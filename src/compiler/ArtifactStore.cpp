//===- compiler/ArtifactStore.cpp - Disk-persistent artifacts ----------------==//

#include "compiler/ArtifactStore.h"

#include "compiler/StructuralHash.h"
#include "opt/Frequency.h"
#include "opt/LinearReplacement.h"
#include "support/Diag.h"
#include "support/FaultInjection.h"
#include "support/RuntimeConfig.h"
#include "support/Serialize.h"
#include "support/StatsRegistry.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <dirent.h>
#include <fcntl.h>
#include <map>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace slin;
using namespace slin::serial;
using namespace slin::wir;

//===----------------------------------------------------------------------===//
// Native-filter factory registry
//===----------------------------------------------------------------------===//

namespace {

std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

std::map<std::string, NativeFilterFactory> &registry() {
  static std::map<std::string, NativeFilterFactory> R;
  return R;
}

/// The built-in serializable natives live in opt/*.cpp; registering them
/// explicitly (rather than via static initializers) keeps registration
/// deterministic under static linking.
void ensureBuiltinFactories() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    registerFrequencyNativeSerialization();
    registerLinearNativeSerialization();
  });
}

std::unique_ptr<NativeFilter> makeNative(const std::string &Tag, Reader &R) {
  ensureBuiltinFactories();
  NativeFilterFactory Factory = nullptr;
  {
    std::lock_guard<std::mutex> Lock(registryMutex());
    auto It = registry().find(Tag);
    if (It != registry().end())
      Factory = It->second;
  }
  if (!Factory) {
    R.fail(); // unknown class: written by a newer build — treat as miss
    return nullptr;
  }
  return Factory(R);
}

} // namespace

void slin::registerNativeFilterFactory(const std::string &Tag,
                                       NativeFilterFactory Factory) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry()[Tag] = Factory;
}

//===----------------------------------------------------------------------===//
// Work-IR serialization
//===----------------------------------------------------------------------===//

namespace {

/// Recursion guard for untrusted trees (expressions nest, statements
/// nest through loops/ifs): deeper than any real work function.
constexpr int MaxTreeDepth = 256;

void writeExpr(Writer &W, const Expr &E);

void writeExprOpt(Writer &W, const Expr *E) {
  W.boolean(E != nullptr);
  if (E)
    writeExpr(W, *E);
}

void writeExpr(Writer &W, const Expr &E) {
  W.u8(static_cast<uint8_t>(E.kind()));
  switch (E.kind()) {
  case ExprKind::Const:
    W.f64(wir::cast<ConstExpr>(&E)->Value);
    return;
  case ExprKind::VarRef:
    W.str(wir::cast<VarRefExpr>(&E)->Name);
    return;
  case ExprKind::ArrayRef: {
    const auto *A = wir::cast<ArrayRefExpr>(&E);
    W.str(A->Name);
    writeExpr(W, *A->Index);
    return;
  }
  case ExprKind::FieldRef: {
    const auto *F = wir::cast<FieldRefExpr>(&E);
    W.str(F->Name);
    writeExprOpt(W, F->Index.get());
    return;
  }
  case ExprKind::Peek:
    writeExpr(W, *wir::cast<PeekExpr>(&E)->Index);
    return;
  case ExprKind::Pop:
    return;
  case ExprKind::Binary: {
    const auto *B = wir::cast<BinaryExpr>(&E);
    W.u8(static_cast<uint8_t>(B->Op));
    writeExpr(W, *B->LHS);
    writeExpr(W, *B->RHS);
    return;
  }
  case ExprKind::Unary: {
    const auto *U = wir::cast<UnaryExpr>(&E);
    W.u8(static_cast<uint8_t>(U->Op));
    writeExpr(W, *U->Operand);
    return;
  }
  case ExprKind::Call: {
    const auto *C = wir::cast<CallExpr>(&E);
    W.u8(static_cast<uint8_t>(C->Fn));
    writeExpr(W, *C->Arg);
    return;
  }
  }
  unreachable("unknown expr kind");
}

ExprPtr readExpr(Reader &R, int Depth);

ExprPtr readExprOpt(Reader &R, int Depth) {
  if (!R.boolean())
    return nullptr;
  return readExpr(R, Depth);
}

ExprPtr readExpr(Reader &R, int Depth) {
  if (Depth > MaxTreeDepth) {
    R.fail();
    return nullptr;
  }
  uint8_t Kind = R.u8();
  if (!R.ok() || Kind > static_cast<uint8_t>(ExprKind::Call)) {
    R.fail();
    return nullptr;
  }
  switch (static_cast<ExprKind>(Kind)) {
  case ExprKind::Const:
    return std::make_unique<ConstExpr>(R.f64());
  case ExprKind::VarRef:
    return std::make_unique<VarRefExpr>(R.str());
  case ExprKind::ArrayRef: {
    std::string Name = R.str();
    ExprPtr Index = readExpr(R, Depth + 1);
    if (!Index)
      return nullptr;
    return std::make_unique<ArrayRefExpr>(std::move(Name), std::move(Index));
  }
  case ExprKind::FieldRef: {
    std::string Name = R.str();
    bool HasIndex = R.boolean();
    ExprPtr Index;
    if (HasIndex) {
      Index = readExpr(R, Depth + 1);
      if (!Index)
        return nullptr;
    }
    if (!R.ok())
      return nullptr;
    return std::make_unique<FieldRefExpr>(std::move(Name), std::move(Index));
  }
  case ExprKind::Peek: {
    ExprPtr Index = readExpr(R, Depth + 1);
    if (!Index)
      return nullptr;
    return std::make_unique<PeekExpr>(std::move(Index));
  }
  case ExprKind::Pop:
    return std::make_unique<PopExpr>();
  case ExprKind::Binary: {
    uint8_t Op = R.u8();
    if (Op > static_cast<uint8_t>(BinOp::LOr)) {
      R.fail();
      return nullptr;
    }
    ExprPtr LHS = readExpr(R, Depth + 1);
    ExprPtr RHS = LHS ? readExpr(R, Depth + 1) : nullptr;
    if (!RHS)
      return nullptr;
    return std::make_unique<BinaryExpr>(static_cast<BinOp>(Op),
                                        std::move(LHS), std::move(RHS));
  }
  case ExprKind::Unary: {
    uint8_t Op = R.u8();
    if (Op > static_cast<uint8_t>(UnOp::LNot)) {
      R.fail();
      return nullptr;
    }
    ExprPtr Operand = readExpr(R, Depth + 1);
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(static_cast<UnOp>(Op),
                                       std::move(Operand));
  }
  case ExprKind::Call: {
    uint8_t Fn = R.u8();
    if (Fn > static_cast<uint8_t>(Intrinsic::Round)) {
      R.fail();
      return nullptr;
    }
    ExprPtr Arg = readExpr(R, Depth + 1);
    if (!Arg)
      return nullptr;
    return std::make_unique<CallExpr>(static_cast<Intrinsic>(Fn),
                                      std::move(Arg));
  }
  }
  unreachable("unknown expr kind");
}

void writeStmts(Writer &W, const StmtList &Body);

void writeStmt(Writer &W, const Stmt &S) {
  W.u8(static_cast<uint8_t>(S.kind()));
  switch (S.kind()) {
  case StmtKind::Assign: {
    const auto *A = wir::cast<AssignStmt>(&S);
    W.str(A->Name);
    writeExpr(W, *A->Value);
    return;
  }
  case StmtKind::ArrayAssign: {
    const auto *A = wir::cast<ArrayAssignStmt>(&S);
    W.str(A->Name);
    writeExpr(W, *A->Index);
    writeExpr(W, *A->Value);
    return;
  }
  case StmtKind::FieldAssign: {
    const auto *F = wir::cast<FieldAssignStmt>(&S);
    W.str(F->Name);
    writeExprOpt(W, F->Index.get());
    writeExpr(W, *F->Value);
    return;
  }
  case StmtKind::LocalArray: {
    const auto *L = wir::cast<LocalArrayStmt>(&S);
    W.str(L->Name);
    W.i32(L->Size);
    return;
  }
  case StmtKind::Push:
    writeExpr(W, *wir::cast<PushStmt>(&S)->Value);
    return;
  case StmtKind::PopDiscard:
    return;
  case StmtKind::For: {
    const auto *F = wir::cast<ForStmt>(&S);
    W.str(F->Var);
    writeExpr(W, *F->Begin);
    writeExpr(W, *F->End);
    writeStmts(W, F->Body);
    return;
  }
  case StmtKind::If: {
    const auto *I = wir::cast<IfStmt>(&S);
    writeExpr(W, *I->Cond);
    writeStmts(W, I->Then);
    writeStmts(W, I->Else);
    return;
  }
  case StmtKind::Print:
    writeExpr(W, *wir::cast<PrintStmt>(&S)->Value);
    return;
  case StmtKind::Uncounted:
    writeStmts(W, wir::cast<UncountedStmt>(&S)->Body);
    return;
  }
  unreachable("unknown stmt kind");
}

void writeStmts(Writer &W, const StmtList &Body) {
  W.u32(static_cast<uint32_t>(Body.size()));
  for (const StmtPtr &S : Body)
    writeStmt(W, *S);
}

bool readStmts(Reader &R, StmtList &Out, int Depth);

StmtPtr readStmt(Reader &R, int Depth) {
  if (Depth > MaxTreeDepth) {
    R.fail();
    return nullptr;
  }
  uint8_t Kind = R.u8();
  if (!R.ok() || Kind > static_cast<uint8_t>(StmtKind::Uncounted)) {
    R.fail();
    return nullptr;
  }
  switch (static_cast<StmtKind>(Kind)) {
  case StmtKind::Assign: {
    std::string Name = R.str();
    ExprPtr Value = readExpr(R, Depth + 1);
    if (!Value)
      return nullptr;
    return std::make_unique<AssignStmt>(std::move(Name), std::move(Value));
  }
  case StmtKind::ArrayAssign: {
    std::string Name = R.str();
    ExprPtr Index = readExpr(R, Depth + 1);
    ExprPtr Value = Index ? readExpr(R, Depth + 1) : nullptr;
    if (!Value)
      return nullptr;
    return std::make_unique<ArrayAssignStmt>(std::move(Name),
                                             std::move(Index),
                                             std::move(Value));
  }
  case StmtKind::FieldAssign: {
    std::string Name = R.str();
    ExprPtr Index = readExprOpt(R, Depth + 1);
    if (!R.ok())
      return nullptr;
    ExprPtr Value = readExpr(R, Depth + 1);
    if (!Value)
      return nullptr;
    return std::make_unique<FieldAssignStmt>(std::move(Name),
                                             std::move(Index),
                                             std::move(Value));
  }
  case StmtKind::LocalArray: {
    std::string Name = R.str();
    int Size = R.i32();
    if (!R.ok() || Size < 0)
      return nullptr;
    return std::make_unique<LocalArrayStmt>(std::move(Name), Size);
  }
  case StmtKind::Push: {
    ExprPtr Value = readExpr(R, Depth + 1);
    if (!Value)
      return nullptr;
    return std::make_unique<PushStmt>(std::move(Value));
  }
  case StmtKind::PopDiscard:
    return std::make_unique<PopDiscardStmt>();
  case StmtKind::For: {
    std::string Var = R.str();
    ExprPtr Begin = readExpr(R, Depth + 1);
    ExprPtr End = Begin ? readExpr(R, Depth + 1) : nullptr;
    StmtList Body;
    if (!End || !readStmts(R, Body, Depth + 1))
      return nullptr;
    return std::make_unique<ForStmt>(std::move(Var), std::move(Begin),
                                     std::move(End), std::move(Body));
  }
  case StmtKind::If: {
    ExprPtr Cond = readExpr(R, Depth + 1);
    StmtList Then, Else;
    if (!Cond || !readStmts(R, Then, Depth + 1) ||
        !readStmts(R, Else, Depth + 1))
      return nullptr;
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else));
  }
  case StmtKind::Print: {
    ExprPtr Value = readExpr(R, Depth + 1);
    if (!Value)
      return nullptr;
    return std::make_unique<PrintStmt>(std::move(Value));
  }
  case StmtKind::Uncounted: {
    StmtList Body;
    if (!readStmts(R, Body, Depth + 1))
      return nullptr;
    return std::make_unique<UncountedStmt>(std::move(Body));
  }
  }
  unreachable("unknown stmt kind");
}

bool readStmts(Reader &R, StmtList &Out, int Depth) {
  uint32_t N = R.u32();
  if (!R.ok() || N > R.remaining()) { // each stmt needs >= 1 byte
    R.fail();
    return false;
  }
  Out.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    StmtPtr S = readStmt(R, Depth);
    if (!S)
      return false;
    Out.push_back(std::move(S));
  }
  return true;
}

void writeWork(Writer &W, const WorkFunction &Fn) {
  W.i32(Fn.PeekRate);
  W.i32(Fn.PopRate);
  W.i32(Fn.PushRate);
  writeStmts(W, Fn.Body);
}

bool readWork(Reader &R, WorkFunction &Out) {
  int Peek = R.i32();
  int Pop = R.i32();
  int Push = R.i32();
  StmtList Body;
  if (!readStmts(R, Body, 0))
    return false;
  if (Peek < 0 || Pop < 0 || Push < 0)
    return false;
  Out = WorkFunction(Peek, Pop, Push, std::move(Body));
  return true;
}

void writeFields(Writer &W, const std::vector<FieldDef> &Fields) {
  W.u32(static_cast<uint32_t>(Fields.size()));
  for (const FieldDef &F : Fields) {
    W.str(F.Name);
    W.boolean(F.IsArray);
    W.boolean(F.IsMutable);
    W.f64s(F.Init);
  }
}

bool readFields(Reader &R, std::vector<FieldDef> &Out) {
  uint32_t N = R.u32();
  if (!R.ok() || N > R.remaining()) {
    R.fail();
    return false;
  }
  Out.resize(N);
  for (FieldDef &F : Out) {
    F.Name = R.str();
    F.IsArray = R.boolean();
    F.IsMutable = R.boolean();
    F.Init = R.f64s();
  }
  return R.ok();
}

//===----------------------------------------------------------------------===//
// Stream-tree serialization
//===----------------------------------------------------------------------===//

enum StreamTag : uint8_t {
  TagFilterIR = 1,
  TagFilterNative = 2,
  TagPipeline = 3,
  TagSplitJoin = 4,
  TagFeedback = 5,
};

bool writeStream(Writer &W, const Stream &S) {
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = slin::cast<Filter>(&S);
    if (F->isNative()) {
      const char *Tag = F->native().serialTag();
      if (!Tag)
        return false; // not serializable; the program stays memory-only
      W.u8(TagFilterNative);
      W.str(F->name());
      W.str(Tag);
      F->native().serializePayload(W);
      return true;
    }
    W.u8(TagFilterIR);
    W.str(F->name());
    writeFields(W, F->fields());
    writeWork(W, F->work());
    const WorkFunction *IW = F->initWork();
    W.boolean(IW != nullptr);
    if (IW)
      writeWork(W, *IW);
    return true;
  }
  case StreamKind::Pipeline: {
    const auto *P = slin::cast<Pipeline>(&S);
    W.u8(TagPipeline);
    W.str(P->name());
    W.u32(static_cast<uint32_t>(P->children().size()));
    for (const StreamPtr &C : P->children())
      if (!writeStream(W, *C))
        return false;
    return true;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = slin::cast<SplitJoin>(&S);
    W.u8(TagSplitJoin);
    W.str(SJ->name());
    W.u8(static_cast<uint8_t>(SJ->splitter().Kind));
    W.ints(SJ->splitter().Weights);
    W.ints(SJ->joiner().Weights);
    W.u32(static_cast<uint32_t>(SJ->children().size()));
    for (const StreamPtr &C : SJ->children())
      if (!writeStream(W, *C))
        return false;
    return true;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = slin::cast<FeedbackLoop>(&S);
    W.u8(TagFeedback);
    W.str(FB->name());
    W.ints(FB->joiner().Weights);
    W.u8(static_cast<uint8_t>(FB->splitter().Kind));
    W.ints(FB->splitter().Weights);
    W.f64s(FB->enqueued());
    return writeStream(W, FB->body()) && writeStream(W, FB->loop());
  }
  }
  unreachable("unknown stream kind");
}

StreamPtr readStream(Reader &R, int Depth) {
  if (Depth > MaxTreeDepth) {
    R.fail();
    return nullptr;
  }
  uint8_t Tag = R.u8();
  if (!R.ok()) {
    R.fail();
    return nullptr;
  }
  switch (Tag) {
  case TagFilterIR: {
    std::string Name = R.str();
    std::vector<FieldDef> Fields;
    WorkFunction Work;
    if (!readFields(R, Fields) || !readWork(R, Work))
      return nullptr;
    auto F = std::make_unique<Filter>(std::move(Name), std::move(Fields),
                                      std::move(Work));
    if (R.boolean()) {
      WorkFunction Init;
      if (!readWork(R, Init))
        return nullptr;
      F->setInitWork(std::move(Init));
    }
    if (!R.ok())
      return nullptr;
    return F;
  }
  case TagFilterNative: {
    std::string Name = R.str();
    std::string NativeTag = R.str();
    if (!R.ok())
      return nullptr;
    std::unique_ptr<NativeFilter> N = makeNative(NativeTag, R);
    if (!N || !R.ok()) {
      R.fail();
      return nullptr;
    }
    return std::make_unique<Filter>(std::move(Name), std::move(N));
  }
  case TagPipeline: {
    std::string Name = R.str();
    uint32_t Count = R.u32();
    if (!R.ok() || Count == 0 || Count > R.remaining()) {
      R.fail();
      return nullptr;
    }
    auto P = std::make_unique<Pipeline>(std::move(Name));
    for (uint32_t I = 0; I != Count; ++I) {
      StreamPtr C = readStream(R, Depth + 1);
      if (!C)
        return nullptr;
      P->add(std::move(C));
    }
    return P;
  }
  case TagSplitJoin: {
    std::string Name = R.str();
    uint8_t SplitKind = R.u8();
    std::vector<int> SplitWeights = R.ints();
    std::vector<int> JoinWeights = R.ints();
    uint32_t Count = R.u32();
    if (!R.ok() || SplitKind > Splitter::RoundRobin || Count == 0 ||
        Count > R.remaining()) {
      R.fail();
      return nullptr;
    }
    Splitter Split = SplitKind == Splitter::Duplicate
                         ? Splitter::duplicate()
                         : Splitter::roundRobin(std::move(SplitWeights));
    auto SJ = std::make_unique<SplitJoin>(
        std::move(Name), std::move(Split),
        Joiner::roundRobin(std::move(JoinWeights)));
    for (uint32_t I = 0; I != Count; ++I) {
      StreamPtr C = readStream(R, Depth + 1);
      if (!C)
        return nullptr;
      SJ->add(std::move(C));
    }
    return SJ;
  }
  case TagFeedback: {
    std::string Name = R.str();
    std::vector<int> JoinWeights = R.ints();
    uint8_t SplitKind = R.u8();
    std::vector<int> SplitWeights = R.ints();
    std::vector<double> Enqueued = R.f64s();
    if (!R.ok() || SplitKind > Splitter::RoundRobin) {
      R.fail();
      return nullptr;
    }
    StreamPtr Body = readStream(R, Depth + 1);
    StreamPtr Loop = Body ? readStream(R, Depth + 1) : nullptr;
    if (!Loop)
      return nullptr;
    Splitter Split = SplitKind == Splitter::Duplicate
                         ? Splitter::duplicate()
                         : Splitter::roundRobin(std::move(SplitWeights));
    return std::make_unique<FeedbackLoop>(
        std::move(Name), Joiner::roundRobin(std::move(JoinWeights)),
        std::move(Body), std::move(Loop), std::move(Split),
        std::move(Enqueued));
  }
  default:
    R.fail();
    return nullptr;
  }
}

/// Filters in canonical DFS order (pipeline/splitjoin children in order,
/// feedback body before loop) — identical on both sides of a round trip,
/// so the flat graph can reference filters by index.
void collectFilters(const Stream &S, std::vector<const Filter *> &Out) {
  switch (S.kind()) {
  case StreamKind::Filter:
    Out.push_back(slin::cast<Filter>(&S));
    return;
  case StreamKind::Pipeline:
    for (const StreamPtr &C : slin::cast<Pipeline>(&S)->children())
      collectFilters(*C, Out);
    return;
  case StreamKind::SplitJoin:
    for (const StreamPtr &C : slin::cast<SplitJoin>(&S)->children())
      collectFilters(*C, Out);
    return;
  case StreamKind::FeedbackLoop: {
    const auto *FB = slin::cast<FeedbackLoop>(&S);
    collectFilters(FB->body(), Out);
    collectFilters(FB->loop(), Out);
    return;
  }
  }
  unreachable("unknown stream kind");
}

//===----------------------------------------------------------------------===//
// Flat graph serialization
//===----------------------------------------------------------------------===//

void writeFlatGraph(Writer &W, const flat::FlatGraph &G,
                    const std::map<const Filter *, int> &FilterIdx) {
  W.u32(static_cast<uint32_t>(G.Nodes.size()));
  for (const flat::Node &N : G.Nodes) {
    W.u8(static_cast<uint8_t>(N.Kind));
    W.str(N.Name);
    W.i32(N.F ? FilterIdx.at(N.F) : -1);
    W.i32(N.In);
    W.i32(N.Out);
    W.ints(N.Ins);
    W.ints(N.Outs);
    W.ints(N.Weights);
  }
  W.u32(static_cast<uint32_t>(G.InitialItems.size()));
  for (const std::vector<double> &Items : G.InitialItems)
    W.f64s(Items);
  W.i32(G.ExternalIn);
  W.i32(G.ExternalOut);
  W.boolean(G.RootProducesOutput);
}

bool channelInRange(int C, size_t NumChannels) {
  return C >= -1 && C < static_cast<int>(NumChannels);
}

bool readFlatGraph(Reader &R, const std::vector<const Filter *> &Filters,
                   flat::FlatGraph &Out) {
  uint32_t NumNodes = R.u32();
  if (!R.ok() || NumNodes > R.remaining()) {
    R.fail();
    return false;
  }
  Out.Nodes.resize(NumNodes);
  for (flat::Node &N : Out.Nodes) {
    uint8_t Kind = R.u8();
    if (!R.ok() || Kind > static_cast<uint8_t>(flat::NodeKind::RRJoin)) {
      R.fail();
      return false;
    }
    N.Kind = static_cast<flat::NodeKind>(Kind);
    N.Name = R.str();
    int FIdx = R.i32();
    N.In = R.i32();
    N.Out = R.i32();
    N.Ins = R.ints();
    N.Outs = R.ints();
    N.Weights = R.ints();
    bool IsFilter = N.Kind == flat::NodeKind::Filter;
    if (!R.ok() || FIdx < (IsFilter ? 0 : -1) || (!IsFilter && FIdx != -1) ||
        (IsFilter && static_cast<size_t>(FIdx) >= Filters.size())) {
      R.fail();
      return false;
    }
    N.F = IsFilter ? Filters[static_cast<size_t>(FIdx)] : nullptr;
  }
  uint32_t NumChannels = R.u32();
  if (!R.ok() || NumChannels > R.remaining()) {
    R.fail();
    return false;
  }
  Out.InitialItems.resize(NumChannels);
  for (std::vector<double> &Items : Out.InitialItems)
    Items = R.f64s();
  Out.ExternalIn = R.i32();
  Out.ExternalOut = R.i32();
  Out.RootProducesOutput = R.boolean();
  if (!R.ok())
    return false;
  // Every channel reference must be a real channel (the executors trust
  // these indices).
  for (const flat::Node &N : Out.Nodes) {
    if (!channelInRange(N.In, NumChannels) ||
        !channelInRange(N.Out, NumChannels))
      return false;
    for (int C : N.Ins)
      if (!channelInRange(C, NumChannels))
        return false;
    for (int C : N.Outs)
      if (!channelInRange(C, NumChannels))
        return false;
  }
  return channelInRange(Out.ExternalIn, NumChannels) &&
         channelInRange(Out.ExternalOut, NumChannels);
}

//===----------------------------------------------------------------------===//
// Shard-info serialization
//===----------------------------------------------------------------------===//

void writeShardInfo(Writer &W, const CompiledProgram::ShardInfo &S) {
  W.boolean(S.Shardable);
  W.str(S.Reason);
  W.i64(S.WashoutIterations);
  W.u32(static_cast<uint32_t>(S.Seeds.size()));
  for (const CompiledProgram::ShardInfo::FieldSeed &Seed : S.Seeds) {
    W.i32(Seed.Node);
    W.i32(Seed.Field);
    W.f64(Seed.Base);
    W.f64(Seed.DeltaFirst);
    W.f64(Seed.DeltaRest);
    W.f64(Seed.Modulus);
  }
}

bool readShardInfo(Reader &R, CompiledProgram::ShardInfo &Out) {
  Out.Shardable = R.boolean();
  Out.Reason = R.str();
  Out.WashoutIterations = R.i64();
  uint32_t N = R.u32();
  // Each seed occupies 40 bytes on the wire.
  if (!R.ok() || static_cast<uint64_t>(N) * 40 > R.remaining()) {
    R.fail();
    return false;
  }
  Out.Seeds.resize(N);
  for (CompiledProgram::ShardInfo::FieldSeed &Seed : Out.Seeds) {
    Seed.Node = R.i32();
    Seed.Field = R.i32();
    Seed.Base = R.f64();
    Seed.DeltaFirst = R.f64();
    Seed.DeltaRest = R.f64();
    Seed.Modulus = R.f64();
  }
  return R.ok();
}

} // namespace

//===----------------------------------------------------------------------===//
// Whole-program serialization
//===----------------------------------------------------------------------===//

bool slin::serializeProgram(Writer &W, const CompiledProgram &P) {
  // Engine options — destructured so a new field breaks the build here
  // (mirroring hashOptions' exhaustiveness check) instead of silently
  // round-tripping to its default.
  const auto &[BatchIterations, Parallel] = P.options();
  const auto &[Workers, ShardMinIterations] = Parallel;
  W.i32(BatchIterations);
  W.i32(Workers);
  W.i64(ShardMinIterations);

  if (!writeStream(W, P.root()))
    return false;

  std::vector<const Filter *> Filters;
  collectFilters(P.root(), Filters);
  std::map<const Filter *, int> FilterIdx;
  for (size_t I = 0; I != Filters.size(); ++I)
    FilterIdx[Filters[I]] = static_cast<int>(I);

  writeFlatGraph(W, P.graph(), FilterIdx);
  serializeSchedule(W, P.schedule());

  // Per-node compiled forms. Native prototypes live in the stream tree;
  // here they are just marked so the loader rewires the pointer.
  for (size_t I = 0; I != P.graph().Nodes.size(); ++I) {
    const flat::Node &N = P.graph().Nodes[I];
    if (N.Kind != flat::NodeKind::Filter) {
      W.u8(0);
      continue;
    }
    const CompiledProgram::FilterArtifact &A = P.filterArtifact(I);
    if (A.Native) {
      W.u8(1);
      continue;
    }
    W.u8(A.InitWork.empty() ? 2 : 3);
    A.Work.serialize(W);
    if (!A.InitWork.empty())
      A.InitWork.serialize(W);
  }

  writeShardInfo(W, P.shardInfo());
  return true;
}

std::shared_ptr<const CompiledProgram> slin::deserializeProgram(Reader &R) {
  ensureBuiltinFactories();
  CompiledProgram::Parts Parts;

  auto &Opts = Parts.Opts;
  Opts.BatchIterations = R.i32();
  Opts.Parallel.Workers = R.i32();
  Opts.Parallel.ShardMinIterations = R.i64();
  if (!R.ok() || Opts.BatchIterations < 1)
    return nullptr;

  Parts.Root = readStream(R, 0);
  if (!Parts.Root)
    return nullptr;

  std::vector<const Filter *> Filters;
  collectFilters(*Parts.Root, Filters);

  if (!readFlatGraph(R, Filters, Parts.Graph))
    return nullptr;
  if (!deserializeSchedule(R, Parts.Sched))
    return nullptr;

  const size_t NumNodes = Parts.Graph.Nodes.size();
  const size_t NumChannels = Parts.Graph.numChannels();
  // The schedule's per-node and per-channel tables must match the graph
  // (the executors index them without checks).
  if (Parts.Sched.Repetitions.size() != NumNodes ||
      Parts.Sched.InitFirings.size() != NumNodes ||
      Parts.Sched.ChannelHighWater.size() != NumChannels ||
      Parts.Sched.ChannelBufSize.size() != NumChannels ||
      Parts.Sched.PostInitLive.size() != NumChannels)
    return nullptr;
  auto ValidSteps = [&](const FiringProgram &P) {
    for (const FiringStep &S : P)
      if (S.Node < 0 || static_cast<size_t>(S.Node) >= NumNodes ||
          S.Count < 0)
        return false;
    return true;
  };
  if (!ValidSteps(Parts.Sched.InitProgram) ||
      !ValidSteps(Parts.Sched.SteadyProgram) ||
      !ValidSteps(Parts.Sched.BatchProgram))
    return nullptr;

  Parts.Artifacts.resize(NumNodes);
  for (size_t I = 0; I != NumNodes; ++I) {
    const flat::Node &N = Parts.Graph.Nodes[I];
    uint8_t Form = R.u8();
    if (!R.ok())
      return nullptr;
    bool IsFilter = N.Kind == flat::NodeKind::Filter;
    if (Form == 0) {
      if (IsFilter)
        return nullptr;
      continue;
    }
    if (!IsFilter)
      return nullptr;
    CompiledProgram::FilterArtifact &A = Parts.Artifacts[I];
    if (Form == 1) {
      if (!N.F->isNative())
        return nullptr;
      A.Native = &N.F->native();
      continue;
    }
    if (Form > 3 || N.F->isNative())
      return nullptr;
    if (!wir::OpProgram::deserialize(R, A.Work))
      return nullptr;
    if (Form == 3 && !wir::OpProgram::deserialize(R, A.InitWork))
      return nullptr;
  }

  if (!readShardInfo(R, Parts.Shard))
    return nullptr;
  for (const CompiledProgram::ShardInfo::FieldSeed &Seed :
       Parts.Shard.Seeds) {
    if (Seed.Node < 0 || static_cast<size_t>(Seed.Node) >= NumNodes)
      return nullptr;
    const flat::Node &N = Parts.Graph.Nodes[static_cast<size_t>(Seed.Node)];
    if (N.Kind != flat::NodeKind::Filter || N.F->isNative() ||
        Seed.Field < 0 ||
        static_cast<size_t>(Seed.Field) >= N.F->fields().size())
      return nullptr;
  }

  if (!R.ok() || !R.atEnd())
    return nullptr;
  return std::make_shared<const CompiledProgram>(std::move(Parts));
}

//===----------------------------------------------------------------------===//
// The store
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t ArtifactMagic = 0x315452414E494C53ULL; // "SLINART1"
constexpr uint64_t AliasMagic = 0x3159454B4E494C53ULL;    // "SLINKEY1"
constexpr uint32_t FormatVersion = 1;

struct GlobalStore {
  std::mutex Mutex;
  bool Resolved = false;
  std::unique_ptr<ArtifactStore> Store;
};

GlobalStore &globalStore() {
  static GlobalStore G;
  return G;
}

/// Creates \p Dir (and parents) best-effort; existing directories are
/// fine, failures surface later as plain I/O misses.
void makeDirs(const std::string &Dir) {
  std::string Path;
  for (size_t I = 0; I <= Dir.size(); ++I) {
    if (I != Dir.size() && Dir[I] != '/') {
      Path.push_back(Dir[I]);
      continue;
    }
    if (!Path.empty())
      ::mkdir(Path.c_str(), 0755);
    if (I != Dir.size())
      Path.push_back('/');
  }
}

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  if (Size < 0) {
    std::fclose(F);
    return false;
  }
  std::fseek(F, 0, SEEK_SET);
  Out.resize(static_cast<size_t>(Size));
  bool Ok = Size == 0 || std::fread(Out.data(), 1, Out.size(), F) ==
                             Out.size();
  std::fclose(F);
  return Ok;
}

/// One file in a directory listing, with the stat fields the
/// maintenance passes sort and sum over.
struct DirEntry {
  std::string Name;
  uint64_t Size = 0;
  int64_t Mtime = 0;
};

/// Lists regular files in \p Dir (names only; no recursion).
std::vector<DirEntry> listDir(const std::string &Dir) {
  std::vector<DirEntry> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name == "." || Name == "..")
      continue;
    struct stat St;
    if (::stat((Dir + "/" + Name).c_str(), &St) != 0 ||
        !S_ISREG(St.st_mode))
      continue;
    Out.push_back({std::move(Name), static_cast<uint64_t>(St.st_size),
                   static_cast<int64_t>(St.st_mtime)});
  }
  ::closedir(D);
  return Out;
}

/// EINTR-immune full write of \p Size bytes; returns 0 or the errno.
int writeFully(int Fd, const uint8_t *Data, size_t Size) {
  while (Size > 0) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errno;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return 0;
}

/// Best-effort fsync of a directory (crash safety for the rename: the
/// new directory entry reaches disk). Failure is not an error for the
/// running process — the artifact is still readable — so it is ignored.
void fsyncDir(const std::string &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

/// Stale-tmp policy: a ".tmp.<pid>.<seq>" file is garbage once its
/// writer is gone (kill(pid, 0) == ESRCH) or — when pids wrapped or the
/// parse fails — once it is older than an hour; in-flight publishes
/// live milliseconds.
constexpr int64_t TmpMaxAgeSeconds = 3600;

bool isStaleTmp(const DirEntry &E, int64_t Now) {
  size_t Pos = E.Name.find(".tmp.");
  if (Pos == std::string::npos)
    return false;
  const char *P = E.Name.c_str() + Pos + 5;
  char *End = nullptr;
  long Pid = std::strtol(P, &End, 10);
  if (End != P && *End == '.' && Pid > 0) {
    if (static_cast<pid_t>(Pid) == ::getpid())
      return false; // our own in-flight publish
    if (::kill(static_cast<pid_t>(Pid), 0) != 0 && errno == ESRCH)
      return true;
  }
  return Now - E.Mtime > TmpMaxAgeSeconds;
}

} // namespace

uint32_t ArtifactStore::formatVersion() { return FormatVersion; }

uint32_t ArtifactStore::buildFlags() {
#if defined(SLIN_COUNT_OPS) && SLIN_COUNT_OPS == 0
  return 0;
#else
  return 1; // op accounting compiled in
#endif
}

ArtifactStore::ArtifactStore(std::string Directory)
    : Dir(std::move(Directory)) {
  ensureBuiltinFactories();
  makeDirs(Dir);
  const RuntimeConfig C = RuntimeConfig::current();
  MaxBytes = C.StoreMaxBytes;
  TtlSeconds = C.StoreTtlSeconds;
  sweepNow();
}

void ArtifactStore::setMaxBytes(uint64_t Bytes) {
  MaxBytes = Bytes;
  enforceQuota(std::string());
}

void ArtifactStore::setTtlSeconds(int64_t Seconds) { TtlSeconds = Seconds; }

void ArtifactStore::sweepNow() {
  sweepStaleTmp();
  enforceTtl(std::string());
}

ArtifactStore *ArtifactStore::global() {
  GlobalStore &G = globalStore();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  if (!G.Resolved) {
    G.Resolved = true;
    std::string Dir = RuntimeConfig::current().ArtifactDir;
    if (!Dir.empty())
      G.Store = std::make_unique<ArtifactStore>(Dir);
  }
  return G.Store.get();
}

ArtifactStore *ArtifactStore::globalPeek() {
  GlobalStore &G = globalStore();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  return G.Store.get();
}

ArtifactStore *ArtifactStore::enabledGlobal() {
  // The cache kill-switch disables the disk tier too (tests flip it at
  // runtime and refresh the config snapshot).
  if (RuntimeConfig::current().NoCache)
    return nullptr;
  return global();
}

void ArtifactStore::setGlobalDir(const std::string &Directory) {
  GlobalStore &G = globalStore();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  G.Resolved = true;
  G.Store = Directory.empty() ? nullptr
                              : std::make_unique<ArtifactStore>(Directory);
}

std::string ArtifactStore::pathFor(const Key &K) const {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "a-v%u-f%u-", formatVersion(),
                buildFlags());
  return Dir + "/" + Buf + K.Structure.str() + "-" + K.Options.str() +
         ".slin";
}

namespace {

/// Inverse of HashDigest::str() over one 32-char lowercase-hex name
/// segment; false on any non-hex character.
bool parseDigest(const std::string &S, size_t At, HashDigest &Out) {
  auto Nibble = [](char C, uint64_t &V) {
    if (C >= '0' && C <= '9')
      V = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      V = static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
    return true;
  };
  Out = HashDigest();
  for (int I = 0; I != 16; ++I) {
    uint64_t LoN = 0, HiN = 0;
    if (!Nibble(S[At + static_cast<size_t>(15 - I)], LoN) ||
        !Nibble(S[At + static_cast<size_t>(31 - I)], HiN))
      return false;
    Out.Lo |= LoN << (4 * I);
    Out.Hi |= HiN << (4 * I);
  }
  return true;
}

} // namespace

std::vector<ArtifactStore::Key> ArtifactStore::listArtifacts() const {
  std::vector<Key> Out;
  char Prefix[32];
  std::snprintf(Prefix, sizeof(Prefix), "a-v%u-f%u-", formatVersion(),
                buildFlags());
  const std::string Pre = Prefix;
  // a-v<ver>-f<flags>-<32 hex>-<32 hex>.slin
  const size_t NameLen = Pre.size() + 32 + 1 + 32 + 5;
  for (const DirEntry &E : listDir(Dir)) {
    if (E.Name.size() != NameLen || E.Name.compare(0, Pre.size(), Pre) != 0 ||
        E.Name.compare(NameLen - 5, 5, ".slin") != 0 ||
        E.Name[Pre.size() + 32] != '-')
      continue;
    Key K;
    if (parseDigest(E.Name, Pre.size(), K.Structure) &&
        parseDigest(E.Name, Pre.size() + 33, K.Options))
      Out.push_back(K);
  }
  return Out;
}

std::string ArtifactStore::aliasPathFor(const HashDigest &PipelineKey) const {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "k-v%u-f%u-", formatVersion(),
                buildFlags());
  return Dir + "/" + Buf + PipelineKey.str() + ".slin";
}

bool ArtifactStore::contains(const Key &K) const {
  return ::access(pathFor(K).c_str(), R_OK) == 0;
}

/// One atomic publish attempt: write a unique temp file, fsync it,
/// rename into place, fsync the directory. A failure at any step
/// unlinks the temp file (counted in PublishFailures) — a failed
/// publish must never leave litter behind — and reports what broke.
Status ArtifactStore::writeAtomic(const std::string &Path,
                                  const std::vector<uint8_t> &Header,
                                  const std::vector<uint8_t> &Payload) {
  // Unique temp name per writer; rename() publishes atomically, so a
  // concurrent reader sees either nothing or a complete file, and racing
  // writers of the same key overwrite each other with identical bytes.
  static std::atomic<uint64_t> Seq{0};
  char Suffix[64];
  std::snprintf(Suffix, sizeof(Suffix), ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    Seq.fetch_add(1, std::memory_order_relaxed)));
  std::string Tmp = Path + Suffix;

  auto Fail = [&](ErrorCode C, const std::string &What, int Err) {
    ::unlink(Tmp.c_str());
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.PublishFailures;
    }
    std::string Msg = What;
    if (Err)
      Msg += std::string(": ") + std::strerror(Err);
    return Status(C, Msg + " (" + Tmp + ")");
  };

  int Fd = -1;
  do {
    Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (Fd < 0 && errno == EINTR);
  if (Fd < 0)
    return Fail(errno == ENOSPC ? ErrorCode::NoSpace : ErrorCode::IoError,
                "open temp file", errno);

  int Err = 0;
  if (faults::shouldFail(faults::Point::StoreEnospc))
    Err = ENOSPC;
  else if (faults::shouldFail(faults::Point::ArtifactWriteShort))
    Err = EIO; // a detected short write surfaces as an I/O error
  else {
    Err = writeFully(Fd, Header.data(), Header.size());
    if (!Err)
      Err = writeFully(Fd, Payload.data(), Payload.size());
    // fsync before rename: once the new name exists, its contents are
    // durable — a crash can lose the artifact, never publish a torn one.
    if (!Err)
      while (::fsync(Fd) != 0) {
        if (errno != EINTR) {
          Err = errno;
          break;
        }
      }
  }
  ::close(Fd);
  if (Err)
    return Fail(Err == ENOSPC ? ErrorCode::NoSpace : ErrorCode::IoError,
                "write artifact bytes", Err);

  if (faults::shouldFail(faults::Point::ArtifactRenameFail))
    return Fail(ErrorCode::IoError, "rename (injected)", 0);
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0)
    return Fail(errno == ENOSPC ? ErrorCode::NoSpace : ErrorCode::IoError,
                "rename into place", errno);
  fsyncDir(Dir);
  return Status::ok();
}

/// Bounded retry with backoff around writeAtomic. ENOSPC first tries to
/// free space by evicting the oldest artifacts; retries that still fail
/// return the last Status and the caller stays memory-only.
Status ArtifactStore::publishWithRetry(const std::string &Path,
                                       const std::vector<uint8_t> &Header,
                                       const std::vector<uint8_t> &Payload) {
  constexpr int MaxAttempts = 3;
  Status St;
  for (int Attempt = 0; Attempt != MaxAttempts; ++Attempt) {
    if (Attempt != 0) {
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.IoRetries;
      }
      if (St.code() == ErrorCode::NoSpace)
        evictForSpace(Header.size() + Payload.size(), Path);
      // Exponential backoff (1ms, 4ms): long enough for a transient
      // condition to clear, short enough to be invisible in a compile.
      ::usleep(Attempt == 1 ? 1000 : 4000);
    }
    St = writeAtomic(Path, Header, Payload);
    if (St.isOk())
      return St;
  }
  return St;
}

bool ArtifactStore::store(const Key &K, const CompiledProgram &P) {
  return tryStore(K, P).isOk();
}

Status ArtifactStore::tryStore(const Key &K, const CompiledProgram &P) {
  Writer Payload;
  if (!serializeProgram(Payload, P))
    return Status(ErrorCode::Unserializable,
                  "program holds a native filter without a serialTag")
        .withContext("publish artifact");
  HashDigest PayloadHash =
      hashBytes(Payload.bytes().data(), Payload.size());

  Writer Header;
  Header.u64(ArtifactMagic);
  Header.u32(formatVersion());
  Header.u32(buildFlags());
  Header.u64(K.Structure.Lo);
  Header.u64(K.Structure.Hi);
  Header.u64(K.Options.Lo);
  Header.u64(K.Options.Hi);
  Header.u64(PayloadHash.Lo);
  Header.u64(PayloadHash.Hi);
  Header.u64(Payload.size());

  std::string Path = pathFor(K);
  Status St = publishWithRetry(Path, Header.bytes(), Payload.bytes());
  if (!St.isOk())
    return St.withContext("publish artifact");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Stores;
  }
  enforceTtl(Path);
  enforceQuota(Path);
  return Status::ok();
}

std::shared_ptr<const CompiledProgram> ArtifactStore::load(const Key &K) {
  Expected<std::shared_ptr<const CompiledProgram>> R = tryLoad(K);
  return R ? R.take() : nullptr;
}

Expected<std::shared_ptr<const CompiledProgram>>
ArtifactStore::tryLoad(const Key &K) {
  auto Miss = [&](bool FilePresent, const std::string &Why) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.Misses;
      if (FilePresent)
        ++Counters.LoadFailures;
    }
    return Status(FilePresent ? ErrorCode::Corrupt : ErrorCode::IoError,
                  Why)
        .withContext("load artifact");
  };

  std::vector<uint8_t> Bytes;
  if (!readWholeFile(pathFor(K), Bytes))
    return Miss(false, "no readable artifact file");

  constexpr size_t HeaderSize = 8 + 4 + 4 + 6 * 8 + 8;
  if (Bytes.size() < HeaderSize)
    return Miss(true, "file shorter than the header");
  Reader H(Bytes.data(), HeaderSize);
  uint64_t Magic = H.u64();
  uint32_t Version = H.u32();
  uint32_t Flags = H.u32();
  HashDigest Structure{H.u64(), H.u64()};
  HashDigest Options{H.u64(), H.u64()};
  HashDigest PayloadHash{H.u64(), H.u64()};
  uint64_t PayloadSize = H.u64();
  if (Magic != ArtifactMagic || Version != formatVersion() ||
      Flags != buildFlags() || !(Structure == K.Structure) ||
      !(Options == K.Options) ||
      PayloadSize != Bytes.size() - HeaderSize)
    return Miss(true, "header mismatch (magic/version/flags/key/size)");

  const uint8_t *Payload = Bytes.data() + HeaderSize;
  if (!(hashBytes(Payload, PayloadSize) == PayloadHash))
    // Bit rot: recompile, never serve stale bytes.
    return Miss(true, "payload checksum mismatch");

  Reader R(Payload, PayloadSize);
  auto Program = deserializeProgram(R);
  if (!Program)
    return Miss(true, "malformed payload");
  // Defense in depth: the reconstructed stream must hash to the key it
  // was stored under, and its options must match the options digest.
  if (!(structuralHash(Program->root()) == K.Structure) ||
      !(hashOptions(Program->options()) == K.Options))
    return Miss(true, "reconstructed program does not hash to its key");

  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.Hits;
  return Program;
}

std::string ArtifactStore::objectPathFor(const Key &K,
                                         uint32_t CodegenVersion) const {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "o-v%u-f%u-g%u-", formatVersion(),
                buildFlags(), CodegenVersion);
  return Dir + "/" + Buf + K.Structure.str() + "-" + K.Options.str() + ".so";
}

Status ArtifactStore::publishObject(const Key &K, uint32_t CodegenVersion,
                                    const std::string &TmpPath) {
  std::string Path = objectPathFor(K, CodegenVersion);
  auto Fail = [&](const std::string &What, int Err) {
    ::unlink(TmpPath.c_str());
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.PublishFailures;
    }
    std::string Msg = What;
    if (Err)
      Msg += std::string(": ") + std::strerror(Err);
    return Status(Err == ENOSPC ? ErrorCode::NoSpace : ErrorCode::IoError,
                  Msg + " (" + TmpPath + ")")
        .withContext("publish native object");
  };

  int Fd = ::open(TmpPath.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return Fail("open compiled object", errno);
  int Err = 0;
  while (::fsync(Fd) != 0) {
    if (errno != EINTR) {
      Err = errno;
      break;
    }
  }
  ::close(Fd);
  if (Err)
    return Fail("fsync compiled object", Err);

  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0)
    return Fail("rename into place", errno);
  fsyncDir(Dir);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.ObjectStores;
  }
  enforceTtl(Path);
  enforceQuota(Path);
  return Status::ok();
}

bool ArtifactStore::storeAlias(const HashDigest &PipelineKey,
                               const Key &Artifact) {
  Writer Body;
  Body.u64(PipelineKey.Lo);
  Body.u64(PipelineKey.Hi);
  Body.u64(Artifact.Structure.Lo);
  Body.u64(Artifact.Structure.Hi);
  Body.u64(Artifact.Options.Lo);
  Body.u64(Artifact.Options.Hi);
  HashDigest BodyHash = hashBytes(Body.bytes().data(), Body.size());

  Writer Header;
  Header.u64(AliasMagic);
  Header.u32(formatVersion());
  Header.u32(buildFlags());
  Header.u64(BodyHash.Lo);
  Header.u64(BodyHash.Hi);
  return publishWithRetry(aliasPathFor(PipelineKey), Header.bytes(),
                          Body.bytes())
      .isOk();
}

bool ArtifactStore::loadAlias(const HashDigest &PipelineKey,
                              Key &Out) const {
  std::vector<uint8_t> Bytes;
  if (!readWholeFile(aliasPathFor(PipelineKey), Bytes))
    return false;
  Reader R(Bytes.data(), Bytes.size());
  uint64_t Magic = R.u64();
  uint32_t Version = R.u32();
  uint32_t Flags = R.u32();
  HashDigest BodyHash{R.u64(), R.u64()};
  if (!R.ok() || Magic != AliasMagic || Version != formatVersion() ||
      Flags != buildFlags() || R.remaining() != 6 * 8)
    return false;
  const uint8_t *Body = Bytes.data() + (Bytes.size() - R.remaining());
  if (!(hashBytes(Body, R.remaining()) == BodyHash))
    return false;
  HashDigest StoredKey{R.u64(), R.u64()};
  Out.Structure = {R.u64(), R.u64()};
  Out.Options = {R.u64(), R.u64()};
  if (!R.ok() || !(StoredKey == PipelineKey))
    return false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.AliasHits;
  }
  return true;
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

void ArtifactStore::resetStats() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters = Stats();
}

//===----------------------------------------------------------------------===//
// Store maintenance: stale-tmp sweep, TTL expiry, size quota
//===----------------------------------------------------------------------===//

void ArtifactStore::sweepStaleTmp() {
  int64_t Now = static_cast<int64_t>(::time(nullptr));
  uint64_t Swept = 0;
  for (const DirEntry &E : listDir(Dir))
    if (isStaleTmp(E, Now) && ::unlink((Dir + "/" + E.Name).c_str()) == 0)
      ++Swept;
  if (Swept) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Counters.TmpSwept += Swept;
  }
}

/// Removes published files older than the TTL. Artifact and alias files
/// alike: an expired alias pointing at an evicted artifact would only
/// buy a guaranteed miss.
void ArtifactStore::enforceTtl(const std::string &JustPublished) {
  if (TtlSeconds <= 0)
    return;
  int64_t Now = static_cast<int64_t>(::time(nullptr));
  uint64_t N = 0, Bytes = 0;
  for (const DirEntry &E : listDir(Dir)) {
    std::string Path = Dir + "/" + E.Name;
    if (Path == JustPublished || E.Name.find(".tmp.") != std::string::npos)
      continue;
    if (Now - E.Mtime > TtlSeconds && ::unlink(Path.c_str()) == 0) {
      ++N;
      Bytes += E.Size;
    }
  }
  if (N) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Counters.Evictions += N;
    Counters.EvictedBytes += Bytes;
  }
}

/// Evicts oldest-first until the store fits its byte quota, never
/// touching the file just published (evicting one's own fresh artifact
/// would turn every store into a miss).
void ArtifactStore::enforceQuota(const std::string &JustPublished) {
  if (MaxBytes == 0)
    return;
  std::vector<DirEntry> Entries = listDir(Dir);
  uint64_t Total = 0;
  for (const DirEntry &E : Entries)
    Total += E.Size;
  if (Total <= MaxBytes)
    return;
  std::sort(Entries.begin(), Entries.end(),
            [](const DirEntry &A, const DirEntry &B) {
              return A.Mtime != B.Mtime ? A.Mtime < B.Mtime
                                        : A.Name < B.Name;
            });
  uint64_t N = 0, Bytes = 0;
  for (const DirEntry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    std::string Path = Dir + "/" + E.Name;
    if (Path == JustPublished || E.Name.find(".tmp.") != std::string::npos)
      continue;
    if (::unlink(Path.c_str()) == 0) {
      Total -= E.Size;
      ++N;
      Bytes += E.Size;
    }
  }
  if (N) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Counters.Evictions += N;
    Counters.EvictedBytes += Bytes;
  }
}

/// ENOSPC recovery: free at least \p BytesNeeded by evicting oldest
/// files first; returns bytes actually reclaimed.
uint64_t ArtifactStore::evictForSpace(uint64_t BytesNeeded,
                                      const std::string &JustPublished) {
  std::vector<DirEntry> Entries = listDir(Dir);
  std::sort(Entries.begin(), Entries.end(),
            [](const DirEntry &A, const DirEntry &B) {
              return A.Mtime != B.Mtime ? A.Mtime < B.Mtime
                                        : A.Name < B.Name;
            });
  uint64_t N = 0, Freed = 0;
  for (const DirEntry &E : Entries) {
    if (Freed >= BytesNeeded)
      break;
    std::string Path = Dir + "/" + E.Name;
    if (Path == JustPublished)
      continue;
    if (::unlink(Path.c_str()) == 0) {
      ++N;
      Freed += E.Size;
    }
  }
  if (N) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Counters.Evictions += N;
    Counters.EvictedBytes += Freed;
  }
  return Freed;
}

namespace {
/// Publishes the resolved global store's counters into the unified
/// snapshot. Uses globalPeek(): a stats request must not resolve the
/// environment or mkdir a store directory as a side effect.
const StatsRegistry::Registration ArtifactStoreStatsReg(
    "artifact-store", [](StatsRegistry::Counters &C) {
      ArtifactStore *Store = ArtifactStore::globalPeek();
      if (!Store)
        return;
      ArtifactStore::Stats S = Store->stats();
      C.emplace_back("hits", S.Hits);
      C.emplace_back("misses", S.Misses);
      C.emplace_back("stores", S.Stores);
      C.emplace_back("load_failures", S.LoadFailures);
      C.emplace_back("alias_hits", S.AliasHits);
      C.emplace_back("publish_failures", S.PublishFailures);
      C.emplace_back("io_retries", S.IoRetries);
      C.emplace_back("tmp_swept", S.TmpSwept);
      C.emplace_back("evictions", S.Evictions);
      C.emplace_back("evicted_bytes", S.EvictedBytes);
      C.emplace_back("object_stores", S.ObjectStores);
    });
} // namespace
