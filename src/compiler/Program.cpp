//===- compiler/Program.cpp - Reusable compiled-program artifacts ------------==//

#include "compiler/Program.h"

#include "compiler/StructuralHash.h"

#include <chrono>

using namespace slin;
using namespace slin::flat;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Flattens with timing (member-initializer helper).
FlatGraph flattenTimed(const Stream &Root, double &Seconds) {
  auto Start = std::chrono::steady_clock::now();
  FlatGraph G(Root);
  Seconds = secondsSince(Start);
  return G;
}

StaticSchedule scheduleTimed(const FlatGraph &G, int BatchIterations,
                             double &Seconds) {
  auto Start = std::chrono::steady_clock::now();
  StaticSchedule S = computeSchedule(G, BatchIterations);
  Seconds = secondsSince(Start);
  return S;
}

} // namespace

CompiledProgram::CompiledProgram(const Stream &Root, CompiledOptions Opts)
    : Opts(Opts), Root(Root.clone()),
      Graph(flattenTimed(*this->Root, Stats.FlattenSeconds)),
      Sched(scheduleTimed(Graph, Opts.BatchIterations,
                          Stats.ScheduleSeconds)) {
  auto Start = std::chrono::steady_clock::now();
  Artifacts.resize(Graph.Nodes.size());
  for (size_t I = 0; I != Graph.Nodes.size(); ++I) {
    const Node &N = Graph.Nodes[I];
    if (N.Kind != NodeKind::Filter)
      continue;
    FilterArtifact &A = Artifacts[I];
    if (N.F->isNative()) {
      A.Native = &N.F->native();
      continue;
    }
    A.Work = wir::OpProgram::compile(N.F->work(), N.F->fields());
    if (const wir::WorkFunction *IW = N.F->initWork())
      A.InitWork = wir::OpProgram::compile(*IW, N.F->fields());
  }
  Stats.TapeSeconds = secondsSince(Start);
}

//===----------------------------------------------------------------------===//
// ProgramCache
//===----------------------------------------------------------------------===//

ProgramCache &ProgramCache::global() {
  static ProgramCache Cache;
  return Cache;
}

CompiledProgramRef ProgramCache::get(const Stream &Root,
                                     const CompiledOptions &Opts,
                                     bool *WasHit) {
  Key K{structuralHash(Root), Opts.BatchIterations};
  if (WasHit)
    *WasHit = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(K);
    if (It != Entries.end()) {
      ++Counters.Hits;
      It->second.LastUse = ++UseClock;
      if (WasHit)
        *WasHit = true;
      return It->second.Program;
    }
  }
  // Compile outside the lock; a racing duplicate compile of the same
  // structure is wasteful but correct (first insert wins).
  auto Program = std::make_shared<const CompiledProgram>(Root, Opts);
  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] = Entries.emplace(K, Entry{Program, ++UseClock});
  if (Inserted) {
    ++Counters.Misses;
    while (Entries.size() > Capacity) {
      auto Oldest = Entries.begin();
      for (auto I = Entries.begin(); I != Entries.end(); ++I)
        if (I->second.LastUse < Oldest->second.LastUse)
          Oldest = I;
      Entries.erase(Oldest);
    }
  } else {
    // A racing thread inserted the same key first; count as a hit.
    ++Counters.Hits;
    It->second.LastUse = UseClock;
    if (WasHit)
      *WasHit = true;
  }
  return It->second.Program;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
}

void ProgramCache::setCapacity(size_t N) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Capacity = N ? N : 1;
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}
