//===- compiler/Program.cpp - Reusable compiled-program artifacts ------------==//

#include "compiler/Program.h"

#include "compiler/ArtifactStore.h"
#include "compiler/StructuralHash.h"
#include "support/StatsRegistry.h"

#include <chrono>
#include <cmath>

using namespace slin;
using namespace slin::flat;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Flattens with timing (member-initializer helper).
FlatGraph flattenTimed(const Stream &Root, double &Seconds) {
  auto Start = std::chrono::steady_clock::now();
  FlatGraph G(Root);
  Seconds = secondsSince(Start);
  return G;
}

StaticSchedule scheduleTimed(const FlatGraph &G, int BatchIterations,
                             double &Seconds) {
  auto Start = std::chrono::steady_clock::now();
  StaticSchedule S = computeSchedule(G, BatchIterations);
  Seconds = secondsSince(Start);
  return S;
}

} // namespace

CompiledProgram::CompiledProgram(const Stream &Root, CompiledOptions Opts)
    : Opts(Opts), Root(Root.clone()),
      Graph(flattenTimed(*this->Root, Stats.FlattenSeconds)),
      Sched(scheduleTimed(Graph, Opts.BatchIterations,
                          Stats.ScheduleSeconds)) {
  auto Start = std::chrono::steady_clock::now();
  Artifacts.resize(Graph.Nodes.size());
  for (size_t I = 0; I != Graph.Nodes.size(); ++I) {
    const Node &N = Graph.Nodes[I];
    if (N.Kind != NodeKind::Filter)
      continue;
    FilterArtifact &A = Artifacts[I];
    if (N.F->isNative()) {
      A.Native = &N.F->native();
      continue;
    }
    A.Work = wir::OpProgram::compile(N.F->work(), N.F->fields());
    if (const wir::WorkFunction *IW = N.F->initWork())
      A.InitWork = wir::OpProgram::compile(*IW, N.F->fields());
  }
  Stats.TapeSeconds = secondsSince(Start);
  computeShardInfo();
}

CompiledProgram::CompiledProgram(Parts P)
    : Opts(P.Opts), Root(std::move(P.Root)), Graph(std::move(P.Graph)),
      Sched(std::move(P.Sched)), Artifacts(std::move(P.Artifacts)),
      Shard(std::move(P.Shard)), FromArtifact(true) {}

//===----------------------------------------------------------------------===//
// Shard feasibility
//===----------------------------------------------------------------------===//

namespace {

/// Closed-form seeding is exact only when the iterated per-firing update
/// and the one-shot formula agree bit-for-bit; integers (counters,
/// cursors) do, arbitrary doubles need not.
bool exactlyIntegral(double V) {
  return std::nearbyint(V) == V && std::abs(V) < 9.0e15;
}

} // namespace

void CompiledProgram::computeShardInfo() {
  auto Fail = [&](std::string Why) {
    Shard.Shardable = false;
    Shard.Reason = std::move(Why);
    Shard.Seeds.clear();
  };

  std::vector<int> Depths(Graph.Nodes.size(), 0);
  for (size_t I = 0; I != Graph.Nodes.size(); ++I) {
    const flat::Node &N = Graph.Nodes[I];
    if (N.Kind != flat::NodeKind::Filter)
      continue; // splitters/joiners reorder items statelessly
    if (N.F->isNative()) {
      Depths[I] = N.F->native().stateDepthFirings();
      if (Depths[I] < 0)
        return Fail("native filter '" + N.Name +
                    "' does not declare its state depth");
      continue;
    }

    const FilterArtifact &A = Artifacts[I];
    wir::SteadyStateInfo Steady = A.Work.analyzeSteadyState(N.F->fields());
    if (!Steady.Reconstructable)
      return Fail("filter '" + N.Name + "': " + Steady.Reason);
    wir::SteadyStateInfo Init;
    bool HasInit = !A.InitWork.empty();
    if (HasInit) {
      Init = A.InitWork.analyzeSteadyState(N.F->fields());
      if (!Init.Reconstructable)
        return Fail("filter '" + N.Name + "' (init work): " + Init.Reason);
    }

    // Closed-form fields become FieldSeeds; input-determined fields make
    // the filter depth-1 (one replayed firing rewrites them). A field
    // whose init-work update cannot be folded into the closed form (or
    // that only the init work writes, non-affinely) is irrecoverable.
    using FK = wir::SteadyStateInfo::FieldKind;
    const std::vector<wir::FieldDef> &Fields = N.F->fields();
    for (size_t F = 0; F != Fields.size(); ++F) {
      const wir::SteadyStateInfo::FieldUpdate *SU =
          Steady.updateFor(static_cast<int>(F));
      const wir::SteadyStateInfo::FieldUpdate *IU =
          HasInit ? Init.updateFor(static_cast<int>(F)) : nullptr;
      if (!SU && !IU)
        continue;
      if (SU && SU->Kind == FK::InputDetermined) {
        Depths[I] = std::max(Depths[I], 1);
        continue; // init-work value, if any, is overwritten by warmup
      }
      ShardInfo::FieldSeed Seed;
      Seed.Node = static_cast<int>(I);
      Seed.Field = static_cast<int>(F);
      Seed.Base = Fields[F].Init.empty() ? 0.0 : Fields[F].Init[0];
      double Mod = SU && SU->Kind == FK::ModAffine ? SU->Mod : 0.0;
      Seed.DeltaRest = SU ? SU->Delta : 0.0;
      if (IU) {
        if (IU->Kind == FK::InputDetermined)
          return Fail("filter '" + N.Name + "' field '" + Fields[F].Name +
                      "' is set from init-work input");
        double IMod = IU->Kind == FK::ModAffine ? IU->Mod : 0.0;
        if (SU && IMod != Mod)
          return Fail("filter '" + N.Name + "' field '" + Fields[F].Name +
                      "' mixes moduli between init and steady work");
        if (!SU)
          Mod = IMod;
        Seed.DeltaFirst = IU->Delta;
      } else {
        Seed.DeltaFirst = HasInit ? 0.0 : Seed.DeltaRest;
      }
      Seed.Modulus = Mod;
      if (!exactlyIntegral(Seed.Base) || !exactlyIntegral(Seed.DeltaFirst) ||
          !exactlyIntegral(Seed.DeltaRest) || !exactlyIntegral(Seed.Modulus))
        return Fail("filter '" + N.Name + "' field '" + Fields[F].Name +
                    "' progresses by a non-integral step");
      // Modular cursors: the tape reduces after every firing, the seed
      // reduces once. The representatives agree only when every partial
      // sum is non-negative (fmod keeps the dividend's sign) — so
      // negative bases/deltas, or a modulus too large for exact int64
      // modular arithmetic, are not seedable.
      if (Seed.Modulus > 0 &&
          (Seed.Base < 0 || Seed.DeltaFirst < 0 || Seed.DeltaRest < 0 ||
           Seed.Modulus > 2147483647.0))
        return Fail("filter '" + N.Name + "' field '" + Fields[F].Name +
                    "' is a modular cursor with a negative step");
      Shard.Seeds.push_back(Seed);
    }
  }

  ShardBoundary B = computeShardBoundary(Graph, Sched, Depths);
  if (!B.Feasible)
    return Fail(B.Reason);
  Shard.Shardable = true;
  Shard.Reason.clear();
  Shard.WashoutIterations = B.WashoutIterations;
}

//===----------------------------------------------------------------------===//
// ProgramCache
//===----------------------------------------------------------------------===//

ProgramCache &ProgramCache::global() {
  static ProgramCache Cache;
  return Cache;
}

HashDigest slin::hashOptions(const CompiledOptions &Opts) {
  // Compile-time exhaustiveness: the structured bindings name EVERY field
  // of CompiledOptions and ParallelOptions — adding a field to either
  // struct fails to compile here ("N names provided for M elements")
  // until it is mixed in, so a new knob can never silently alias
  // artifacts compiled under different options.
  const auto &[BatchIterations, Parallel] = Opts;
  const auto &[Workers, ShardMinIterations] = Parallel;
  HashStream H;
  H.mix(0xc0f160); // domain tag
  H.mixInt(BatchIterations);
  H.mixInt(Workers);
  H.mixInt(ShardMinIterations);
  return H.digest();
}

CompiledProgramRef ProgramCache::get(const Stream &Root,
                                     const CompiledOptions &Opts,
                                     bool *WasHit) {
  Key K{structuralHash(Root), hashOptions(Opts)};
  if (WasHit)
    *WasHit = false;
  ArtifactStore *Store = ArtifactStore::enabledGlobal();
  ArtifactStore::Key AK{K.Digest, K.OptsDigest};
  {
    CompiledProgramRef Hit;
    bool NeedsPublish = false;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      auto It = Entries.find(K);
      if (It != Entries.end()) {
        ++Counters.Hits;
        It->second.LastUse = ++UseClock;
        Hit = It->second.Program;
        // Publish memory-only programs (compiled before the store was
        // configured) so alias records and sibling processes can find
        // them — once; steady-state hits stay disk-free.
        NeedsPublish = Store && !It->second.Published;
        It->second.Published = true;
      }
    }
    if (Hit) {
      if (WasHit)
        *WasHit = true;
      if (NeedsPublish && !Store->contains(AK)) {
        bool Stored = Store->store(AK, *Hit);
        std::lock_guard<std::mutex> Lock(Mutex);
        ++(Stored ? Counters.DiskStores : Counters.DiskStoreFailures);
      }
      return Hit;
    }
  }

  // Disk tier (outside the lock: file I/O and deserialization are slow).
  if (Store) {
    if (auto Loaded = Store->load(AK)) {
      if (WasHit)
        *WasHit = true;
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.DiskHits;
      return insertLocked(K, std::move(Loaded), /*Published=*/true);
    }
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.DiskMisses;
  }

  // Compile outside the lock; a racing duplicate compile of the same
  // structure is wasteful but correct (first insert wins).
  auto Program = std::make_shared<const CompiledProgram>(Root, Opts);
  if (Store) {
    bool Stored = Store->store(AK, *Program);
    std::lock_guard<std::mutex> Lock(Mutex);
    ++(Stored ? Counters.DiskStores : Counters.DiskStoreFailures);
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  return insertLocked(K, std::move(Program), /*Published=*/Store != nullptr,
                      WasHit);
}

CompiledProgramRef ProgramCache::lookup(const HashDigest &Structure,
                                        const HashDigest &OptsDigest) {
  Key K{Structure, OptsDigest};
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(K);
    if (It != Entries.end()) {
      ++Counters.Hits;
      It->second.LastUse = ++UseClock;
      return It->second.Program;
    }
  }
  ArtifactStore *Store = ArtifactStore::enabledGlobal();
  if (!Store)
    return nullptr;
  auto Loaded = Store->load({Structure, OptsDigest});
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Loaded) {
    ++Counters.DiskMisses;
    return nullptr;
  }
  ++Counters.DiskHits;
  return insertLocked(K, std::move(Loaded), /*Published=*/true);
}

/// Inserts under the already-held lock, counting a miss (or, when a
/// racing thread inserted first, a hit) and evicting beyond capacity.
CompiledProgramRef ProgramCache::insertLocked(const Key &K,
                                              CompiledProgramRef Program,
                                              bool Published, bool *WasHit) {
  auto [It, Inserted] =
      Entries.emplace(K, Entry{std::move(Program), ++UseClock, Published});
  if (Inserted) {
    ++Counters.Misses;
    evictToCapacityLocked();
  } else {
    // A racing thread inserted the same key first; count as a hit.
    ++Counters.Hits;
    It->second.LastUse = UseClock;
    if (WasHit)
      *WasHit = true;
  }
  return It->second.Program;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
}

void ProgramCache::setCapacity(size_t N) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Capacity = N ? N : 1;
  evictToCapacityLocked();
}

void ProgramCache::evictToCapacityLocked() {
  while (Entries.size() > Capacity) {
    auto Oldest = Entries.begin();
    for (auto I = Entries.begin(); I != Entries.end(); ++I)
      if (I->second.LastUse < Oldest->second.LastUse)
        Oldest = I;
    Entries.erase(Oldest);
    ++Counters.Evictions;
  }
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S = Counters;
  S.Entries = Entries.size();
  return S;
}

void ProgramCache::resetStats() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters = Stats();
}

size_t ProgramCache::prefetchFrom(ArtifactStore &Store) {
  size_t Loaded = 0;
  for (const ArtifactStore::Key &K : Store.listArtifacts()) {
    Key CK{K.Structure, K.Options};
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Entries.count(CK))
        continue;
    }
    CompiledProgramRef P = Store.load(K);
    if (!P)
      continue;
    std::lock_guard<std::mutex> Lock(Mutex);
    auto Inserted = Entries.emplace(
        CK, Entry{std::move(P), ++UseClock, /*Published=*/true});
    if (Inserted.second) {
      ++Loaded;
      evictToCapacityLocked();
    }
  }
  return Loaded;
}

namespace {
/// Publishes the program cache's counters into the unified snapshot
/// (support/StatsRegistry.h) for the service daemon's stats request
/// and slin-lint --stats.
const StatsRegistry::Registration ProgramCacheStatsReg(
    "program-cache", [](StatsRegistry::Counters &C) {
      ProgramCache::Stats S = ProgramCache::global().stats();
      C.emplace_back("hits", S.Hits);
      C.emplace_back("misses", S.Misses);
      C.emplace_back("evictions", S.Evictions);
      C.emplace_back("entries", S.Entries);
      C.emplace_back("disk_hits", S.DiskHits);
      C.emplace_back("disk_misses", S.DiskMisses);
      C.emplace_back("disk_stores", S.DiskStores);
      C.emplace_back("disk_store_failures", S.DiskStoreFailures);
    });
} // namespace
