//===- compiler/Program.h - Reusable compiled-program artifacts -*- C++ -*-===//
///
/// \file
/// The immutable artifact of compiling a stream graph for the batched
/// engine — everything the compile pipeline can precompute once and many
/// executor instances can share:
///
///  * a private clone of the (optimized) stream graph, owning the filter
///    definitions the flat graph points into;
///  * the flattened topology (exec/FlatGraph.h);
///  * the static schedule: init/steady/batch firing programs and exact
///    channel capacities (sched/Schedule.h);
///  * one compiled op tape per IR work function (wir/OpTape.h) and a
///    prototype per native filter.
///
/// CompiledProgram is the "compile once, serve many runs" unit: op tapes
/// execute with per-instance frames and field stores, native prototypes
/// are cloned per instance, so any number of CompiledExecutors can run
/// one program concurrently. ProgramCache hash-conses programs under
/// (structural hash of the stream, engine options); recompiling a
/// structurally identical configuration is a map lookup.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_COMPILER_PROGRAM_H
#define SLIN_COMPILER_PROGRAM_H

#include "exec/ExecOptions.h"
#include "exec/FlatGraph.h"
#include "sched/Schedule.h"
#include "support/Hashing.h"
#include "wir/OpTape.h"

#include <map>
#include <memory>
#include <mutex>

namespace slin {

class ArtifactStore;

class CompiledProgram {
public:
  /// Per-filter compiled form: op tapes for IR filters, a prototype for
  /// native ones. Exactly one of {Work, Native} is meaningful.
  struct FilterArtifact {
    wir::OpProgram Work;
    wir::OpProgram InitWork; ///< empty() when the filter has none
    const NativeFilter *Native = nullptr; ///< owned by the program's root
  };

  /// Wall-clock seconds spent in each lowering phase (pass-manager
  /// timing; filled during construction).
  struct BuildStats {
    double FlattenSeconds = 0.0;
    double ScheduleSeconds = 0.0;
    double TapeSeconds = 0.0;
  };

  /// Whether (and how) the parallel backend may split a run of this
  /// program into independently-executed shards of steady iterations
  /// (exec/Parallel.h). Computed once at compile time from the op tapes'
  /// state classification (wir::SteadyStateInfo), the native filters'
  /// stateDepthFirings() and the schedule's washout depth.
  struct ShardInfo {
    bool Shardable = false;
    std::string Reason; ///< why not, when !Shardable

    /// Steady iterations a worker replays before its shard to refresh
    /// channel contents and input-determined filter state.
    int64_t WashoutIterations = 0;

    /// Closed-form seeding recipe for a mutable scalar field: its value
    /// after T firings is Base (T = 0), else Base + DeltaFirst +
    /// (T - 1) * DeltaRest, reduced modulo Modulus when Modulus > 0.
    /// DeltaFirst differs from DeltaRest only for init-work filters.
    struct FieldSeed {
      int Node = -1;  ///< flat node index
      int Field = -1; ///< field index within the filter
      double Base = 0.0;
      double DeltaFirst = 0.0;
      double DeltaRest = 0.0;
      double Modulus = 0.0; ///< 0: plain affine
    };
    std::vector<FieldSeed> Seeds;
  };

  /// Compiles \p Root (cloning it first; the clone is owned by the
  /// artifact and outlives every executor instantiated from it).
  CompiledProgram(const Stream &Root, CompiledOptions Opts);

  /// The deserialized pieces of a persisted program
  /// (compiler/ArtifactStore.h): everything the compiling constructor
  /// would have produced, reassembled without running any lowering pass.
  struct Parts {
    CompiledOptions Opts;
    StreamPtr Root;
    flat::FlatGraph Graph;
    StaticSchedule Sched;
    std::vector<FilterArtifact> Artifacts;
    ShardInfo Shard;
  };

  /// Adopts deserialized parts. BuildStats stay zero and
  /// loadedFromArtifact() reports true — the assertion hook for "zero
  /// compiler passes executed" tests.
  explicit CompiledProgram(Parts P);

  CompiledProgram(const CompiledProgram &) = delete;
  CompiledProgram &operator=(const CompiledProgram &) = delete;

  const Stream &root() const { return *Root; }
  const flat::FlatGraph &graph() const { return Graph; }
  const StaticSchedule &schedule() const { return Sched; }
  const CompiledOptions &options() const { return Opts; }
  const BuildStats &buildStats() const { return Stats; }
  const ShardInfo &shardInfo() const { return Shard; }

  /// True when this program was reassembled from a stored artifact
  /// rather than compiled in this process.
  bool loadedFromArtifact() const { return FromArtifact; }

  /// Artifact for flat node \p NodeIdx (filter nodes only).
  const FilterArtifact &filterArtifact(size_t NodeIdx) const {
    return Artifacts[NodeIdx];
  }

private:
  void computeShardInfo();

  CompiledOptions Opts;
  /// Declared before Graph/Sched: their member initializers record phase
  /// timings into it.
  BuildStats Stats;
  StreamPtr Root;
  flat::FlatGraph Graph;
  StaticSchedule Sched;
  std::vector<FilterArtifact> Artifacts; ///< indexed by node; filters only
  ShardInfo Shard;
  bool FromArtifact = false;
};

/// Content hash over every field of \p Opts, the options half of the
/// ProgramCache key. Any CompiledOptions field that shapes the artifact
/// or its execution must be mixed here; keying on a subset silently
/// serves artifacts compiled under different options. Exhaustiveness is
/// enforced at compile time: the implementation destructures
/// CompiledOptions and ParallelOptions field by field, so adding a field
/// breaks the build there until it is mixed in (and serialized —
/// compiler/ArtifactStore.cpp destructures the same way).
HashDigest hashOptions(const CompiledOptions &Opts);

using CompiledProgramRef = std::shared_ptr<const CompiledProgram>;

/// Process-wide cache of compiled programs keyed by (structural hash,
/// engine options). Bounded LRU: programs can hold large packed matrices,
/// so the cache evicts the least recently used entry beyond capacity.
///
/// When SLIN_ARTIFACT_DIR is set (compiler/ArtifactStore.h), the cache
/// grows a disk tier: a memory miss consults the store before compiling,
/// and every program compiled here is published for other processes.
/// SLIN_NO_CACHE=1 bypasses the disk tier as well.
class ProgramCache {
public:
  static ProgramCache &global();

  /// Returns the cached program for (\p Root's structure, \p Opts),
  /// compiling and inserting on miss. \p WasHit (optional) reports
  /// whether this call was served from a cache tier (memory or disk).
  CompiledProgramRef get(const Stream &Root, const CompiledOptions &Opts,
                         bool *WasHit = nullptr);

  /// Cache-only lookup by precomputed key digests (memory, then disk);
  /// null on miss — never compiles. The pipeline's alias fast path.
  CompiledProgramRef lookup(const HashDigest &Structure,
                            const HashDigest &OptsDigest);

  /// Loads every valid artifact in \p Store into the memory tier — the
  /// service daemon's startup prefetch, so a configured serving set is
  /// warm (zero compile passes) before the first request arrives.
  /// Artifacts that fail validation and keys already cached are
  /// skipped; no hit/miss counters move (a prefetch is not a request).
  /// Returns the number of programs loaded.
  size_t prefetchFrom(ArtifactStore &Store);

  void clear();
  void setCapacity(size_t N);

  /// Mirrors AnalysisManager::Stats: hit/miss/eviction counters plus a
  /// live-entry snapshot, with the disk tier broken out.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Entries = 0; ///< live entries at snapshot time
    uint64_t DiskHits = 0;
    uint64_t DiskMisses = 0;
    uint64_t DiskStores = 0;
    /// Publishes that failed after the store's own retries (the program
    /// stays memory-only; ArtifactStore::stats() has the failure detail).
    uint64_t DiskStoreFailures = 0;
  };
  Stats stats() const;
  void resetStats();

private:
  /// (structure, options): the options half hashes EVERY CompiledOptions
  /// field (hashOptions). A subset key — the original keyed on
  /// BatchIterations alone — returns a stale artifact whenever two
  /// configurations differ only in the unkeyed fields.
  struct Key {
    HashDigest Digest;
    HashDigest OptsDigest;
    bool operator<(const Key &O) const {
      return Digest != O.Digest ? Digest < O.Digest
                                : OptsDigest < O.OptsDigest;
    }
  };
  struct Entry {
    CompiledProgramRef Program;
    uint64_t LastUse = 0;
    /// Disk publication was attempted (or needs none): steady-state
    /// memory hits must not re-serialize or touch the filesystem.
    bool Published = false;
  };

  CompiledProgramRef insertLocked(const Key &K, CompiledProgramRef Program,
                                  bool Published, bool *WasHit = nullptr);
  void evictToCapacityLocked();

  mutable std::mutex Mutex;
  std::map<Key, Entry> Entries;
  size_t Capacity = 64;
  uint64_t UseClock = 0;
  Stats Counters;
};

} // namespace slin

#endif // SLIN_COMPILER_PROGRAM_H
