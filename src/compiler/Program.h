//===- compiler/Program.h - Reusable compiled-program artifacts -*- C++ -*-===//
///
/// \file
/// The immutable artifact of compiling a stream graph for the batched
/// engine — everything the compile pipeline can precompute once and many
/// executor instances can share:
///
///  * a private clone of the (optimized) stream graph, owning the filter
///    definitions the flat graph points into;
///  * the flattened topology (exec/FlatGraph.h);
///  * the static schedule: init/steady/batch firing programs and exact
///    channel capacities (sched/Schedule.h);
///  * one compiled op tape per IR work function (wir/OpTape.h) and a
///    prototype per native filter.
///
/// CompiledProgram is the "compile once, serve many runs" unit: op tapes
/// execute with per-instance frames and field stores, native prototypes
/// are cloned per instance, so any number of CompiledExecutors can run
/// one program concurrently. ProgramCache hash-conses programs under
/// (structural hash of the stream, engine options); recompiling a
/// structurally identical configuration is a map lookup.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_COMPILER_PROGRAM_H
#define SLIN_COMPILER_PROGRAM_H

#include "exec/ExecOptions.h"
#include "exec/FlatGraph.h"
#include "sched/Schedule.h"
#include "support/Hashing.h"
#include "wir/OpTape.h"

#include <map>
#include <memory>
#include <mutex>

namespace slin {

class CompiledProgram {
public:
  /// Per-filter compiled form: op tapes for IR filters, a prototype for
  /// native ones. Exactly one of {Work, Native} is meaningful.
  struct FilterArtifact {
    wir::OpProgram Work;
    wir::OpProgram InitWork; ///< empty() when the filter has none
    const NativeFilter *Native = nullptr; ///< owned by the program's root
  };

  /// Wall-clock seconds spent in each lowering phase (pass-manager
  /// timing; filled during construction).
  struct BuildStats {
    double FlattenSeconds = 0.0;
    double ScheduleSeconds = 0.0;
    double TapeSeconds = 0.0;
  };

  /// Compiles \p Root (cloning it first; the clone is owned by the
  /// artifact and outlives every executor instantiated from it).
  CompiledProgram(const Stream &Root, CompiledOptions Opts);

  CompiledProgram(const CompiledProgram &) = delete;
  CompiledProgram &operator=(const CompiledProgram &) = delete;

  const Stream &root() const { return *Root; }
  const flat::FlatGraph &graph() const { return Graph; }
  const StaticSchedule &schedule() const { return Sched; }
  const CompiledOptions &options() const { return Opts; }
  const BuildStats &buildStats() const { return Stats; }

  /// Artifact for flat node \p NodeIdx (filter nodes only).
  const FilterArtifact &filterArtifact(size_t NodeIdx) const {
    return Artifacts[NodeIdx];
  }

private:
  CompiledOptions Opts;
  /// Declared before Graph/Sched: their member initializers record phase
  /// timings into it.
  BuildStats Stats;
  StreamPtr Root;
  flat::FlatGraph Graph;
  StaticSchedule Sched;
  std::vector<FilterArtifact> Artifacts; ///< indexed by node; filters only
};

using CompiledProgramRef = std::shared_ptr<const CompiledProgram>;

/// Process-wide cache of compiled programs keyed by (structural hash,
/// engine options). Bounded LRU: programs can hold large packed matrices,
/// so the cache evicts the least recently used entry beyond capacity.
class ProgramCache {
public:
  static ProgramCache &global();

  /// Returns the cached program for (\p Root's structure, \p Opts),
  /// compiling and inserting on miss. \p WasHit (optional) reports
  /// whether this call was served from the cache.
  CompiledProgramRef get(const Stream &Root, const CompiledOptions &Opts,
                         bool *WasHit = nullptr);

  void clear();
  void setCapacity(size_t N);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };
  Stats stats() const;

private:
  struct Key {
    HashDigest Digest;
    int BatchIterations;
    bool operator<(const Key &O) const {
      return Digest != O.Digest ? Digest < O.Digest
                                : BatchIterations < O.BatchIterations;
    }
  };
  struct Entry {
    CompiledProgramRef Program;
    uint64_t LastUse = 0;
  };

  mutable std::mutex Mutex;
  std::map<Key, Entry> Entries;
  size_t Capacity = 64;
  uint64_t UseClock = 0;
  Stats Counters;
};

} // namespace slin

#endif // SLIN_COMPILER_PROGRAM_H
