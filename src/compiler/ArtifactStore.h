//===- compiler/ArtifactStore.h - Disk-persistent artifacts -----*- C++ -*-===//
///
/// \file
/// Disk persistence for CompiledProgram artifacts — the "compile once,
/// cheap forever" promise extended past process exit. A compiled
/// steady-state program is a pure value determined by the stream's
/// structural hash and the full engine options, so it is safe to share
/// across processes and fleets; this store is the content-addressed
/// filesystem tier beneath the in-memory ProgramCache.
///
/// Layout: one file per artifact inside the directory named by
/// SLIN_ARTIFACT_DIR (no store when unset; SLIN_NO_CACHE=1 disables the
/// tier at runtime). Filenames and headers carry the full cache key —
/// {structural hash, hashOptions digest, format version, build flags} —
/// and the header additionally carries a checksum of the payload bytes.
/// A reader accepts a file only when every header field matches and the
/// checksum verifies; anything else (corrupt, truncated, version bump,
/// foreign build flags) is a plain miss that falls back to a clean
/// recompile. Writes go to a temp file renamed into place, so concurrent
/// writers and crashed processes never publish a partial artifact.
///
/// The store is crash-safe and self-maintaining: published bytes are
/// fsynced before the rename (and the directory after), transient I/O
/// failures (EINTR, ENOSPC) are retried with backoff — ENOSPC after an
/// oldest-first eviction pass — construction sweeps stale `.tmp.*`
/// litter left by dead writers, and SLIN_STORE_MAX_BYTES /
/// SLIN_STORE_TTL_S bound the directory by size and age. Every
/// maintenance action is counted in stats(). The tryStore/tryLoad
/// front doors report failures as support/Error.h Statuses; the
/// bool/pointer forms wrap them and degrade to the memory tier.
///
/// Alias records map a *pipeline-level* key (pre-optimization structural
/// hash + the full pipeline configuration) to an artifact key, letting a
/// warm process skip every compiler pass — analysis, selection,
/// replacement and lowering — not just the lowering half.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_COMPILER_ARTIFACTSTORE_H
#define SLIN_COMPILER_ARTIFACTSTORE_H

#include "compiler/Program.h"
#include "support/Error.h"
#include "support/Hashing.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace slin {

namespace serial {
class Writer;
class Reader;
} // namespace serial

class ArtifactStore {
public:
  /// The on-disk cache key: which graph, compiled under which engine
  /// options. Format version and build flags are keyed implicitly (file
  /// name + header).
  struct Key {
    HashDigest Structure; ///< structuralHash of the compiled stream
    HashDigest Options;   ///< hashOptions(CompiledOptions)
  };

  explicit ArtifactStore(std::string Directory);

  /// The process-global store configured by SLIN_ARTIFACT_DIR (resolved
  /// once, on first use); null when the variable is unset or empty.
  static ArtifactStore *global();

  /// The already-resolved process-global store, or null — never
  /// resolves the environment or creates the directory. Stats
  /// snapshots use this so observing the process has no side effects.
  static ArtifactStore *globalPeek();

  /// global(), unless SLIN_NO_CACHE is set (checked per call: the cache
  /// kill-switch must also bypass the disk tier).
  static ArtifactStore *enabledGlobal();

  /// Re-points the process-global store at \p Directory (empty string:
  /// no store). Test/bench hook; not thread-safe against concurrent
  /// global() users.
  static void setGlobalDir(const std::string &Directory);

  const std::string &dir() const { return Dir; }

  /// True when an artifact file for \p K exists (no validation).
  bool contains(const Key &K) const;

  /// Serializes \p P and atomically publishes it under \p K. Returns
  /// false when the program is not serializable (a native filter without
  /// a serialTag) or on I/O failure — callers lose nothing but the tier.
  bool store(const Key &K, const CompiledProgram &P);

  /// Non-fatal front door behind store(): the same publish with the
  /// failure explained. Transient I/O errors (EINTR, and ENOSPC after an
  /// eviction pass) are retried with backoff a bounded number of times
  /// before the Status is returned; the caller's degradation is
  /// memory-only operation, never an abort.
  Status tryStore(const Key &K, const CompiledProgram &P);

  /// Loads and validates the artifact for \p K; null on any miss or
  /// validation failure (corrupt, truncated, wrong version/flags/key).
  std::shared_ptr<const CompiledProgram> load(const Key &K);

  /// Non-fatal front door behind load(): the miss/rejection explained
  /// (ErrorCode::IoError for an unreadable file, Corrupt for a present
  /// file that failed validation). The degradation is a clean recompile.
  Expected<std::shared_ptr<const CompiledProgram>> tryLoad(const Key &K);

  /// Final path of the native-code shared object for \p K under codegen
  /// scheme \p CodegenVersion (codegen/NativeModule.h). The filename
  /// carries the full key — digests, format version, build flags,
  /// codegen version — so scheme bumps are plain misses, and the .so
  /// participates in the same TTL/quota sweeps as program artifacts.
  std::string objectPathFor(const Key &K, uint32_t CodegenVersion) const;

  /// Atomically publishes the already-compiled object \p TmpPath (a
  /// `.tmp.<pid>.*`-suffixed file inside dir()) as objectPathFor(...):
  /// fsync, rename into place, directory fsync, then TTL/quota
  /// enforcement. On failure \p TmpPath is unlinked. Unlike tryStore
  /// there is no checksummed header — the dlopen + ABI-version check on
  /// load is the validation — so corruption degrades to a recompile.
  Status publishObject(const Key &K, uint32_t CodegenVersion,
                       const std::string &TmpPath);

  /// Publishes a pipeline-key → artifact-key alias record.
  bool storeAlias(const HashDigest &PipelineKey, const Key &Artifact);

  /// Resolves a pipeline key to an artifact key; false on miss.
  bool loadAlias(const HashDigest &PipelineKey, Key &Out) const;

  struct Stats {
    uint64_t Hits = 0;         ///< artifact loads that validated
    uint64_t Misses = 0;       ///< loads with no usable file
    uint64_t Stores = 0;       ///< artifacts published
    uint64_t LoadFailures = 0; ///< files present but rejected (subset of Misses)
    uint64_t AliasHits = 0;
    uint64_t PublishFailures = 0; ///< failed atomic publishes (tmp unlinked)
    uint64_t IoRetries = 0;       ///< publish attempts retried after a failure
    uint64_t TmpSwept = 0;        ///< stale .tmp.* files garbage-collected
    uint64_t Evictions = 0;       ///< files evicted by the size/TTL policy
    uint64_t EvictedBytes = 0;    ///< bytes reclaimed by those evictions
    uint64_t ObjectStores = 0;    ///< native .so objects published
  };
  Stats stats() const;
  void resetStats();

  /// Size/TTL eviction knobs, defaulted from SLIN_STORE_MAX_BYTES and
  /// SLIN_STORE_TTL_S at construction (0: unlimited / no expiry).
  /// Enforced after every publish, oldest files first, never evicting
  /// the file just published. Setters are test hooks.
  void setMaxBytes(uint64_t Bytes);
  void setTtlSeconds(int64_t Seconds);

  /// Runs the startup maintenance pass now: garbage-collects stale
  /// .tmp.* files (writer process dead, or older than one hour) and
  /// applies the TTL policy. Also runs at construction.
  void sweepNow();

  /// Bumped whenever the serialized layout changes; old files become
  /// plain misses (never mis-parsed: the header is checked first).
  static uint32_t formatVersion();

  /// Build-configuration word mixed into the key (currently whether op
  /// accounting is compiled in — tapes run identically either way, but
  /// artifacts are kept per-configuration by policy).
  static uint32_t buildFlags();

  /// Artifact file path for \p K (for tests that corrupt/patch files).
  std::string pathFor(const Key &K) const;

  /// Keys of every program artifact currently in the store whose file
  /// name matches this build's format version and build flags (the only
  /// ones load() could accept). Parsed from file names; no file content
  /// is read or validated. The inventory hook for tools that audit a
  /// store, e.g. tools/slin-lint's lint-what-you-serve mode.
  std::vector<Key> listArtifacts() const;

private:
  std::string aliasPathFor(const HashDigest &PipelineKey) const;
  Status writeAtomic(const std::string &Path,
                     const std::vector<uint8_t> &Header,
                     const std::vector<uint8_t> &Payload);
  Status publishWithRetry(const std::string &Path,
                          const std::vector<uint8_t> &Header,
                          const std::vector<uint8_t> &Payload);
  void sweepStaleTmp();
  void enforceTtl(const std::string &JustPublished);
  void enforceQuota(const std::string &JustPublished);
  uint64_t evictForSpace(uint64_t BytesNeeded,
                         const std::string &JustPublished);

  std::string Dir;
  uint64_t MaxBytes = 0;   ///< 0: unbounded
  int64_t TtlSeconds = 0;  ///< 0: no expiry
  mutable std::mutex Mutex;
  mutable Stats Counters; ///< loadAlias (const) counts its hits
};

//===----------------------------------------------------------------------===//
// Native-filter factory registry
//===----------------------------------------------------------------------===//

/// Reconstructs a native filter from the payload its serializePayload
/// wrote; returns null on malformed input.
using NativeFilterFactory = std::unique_ptr<NativeFilter> (*)(serial::Reader &);

/// Registers \p Factory for NativeFilter::serialTag() == \p Tag
/// (last registration wins; registration is thread-safe).
void registerNativeFilterFactory(const std::string &Tag,
                                 NativeFilterFactory Factory);

//===----------------------------------------------------------------------===//
// Raw program serialization (store-independent; tests use this directly)
//===----------------------------------------------------------------------===//

/// Writes the complete artifact payload: engine options, the optimized
/// stream (work IR, fields, native prototypes), the flat graph, the
/// static schedule, every op tape, and the shard-boundary metadata.
/// Returns false when a native filter is not serializable (\p W is then
/// partially written; discard it).
bool serializeProgram(serial::Writer &W, const CompiledProgram &P);

/// Rebuilds a program from payload bytes; null on malformed input. The
/// result reports loadedFromArtifact() and zero BuildStats — no compiler
/// pass runs.
std::shared_ptr<const CompiledProgram> deserializeProgram(serial::Reader &R);

} // namespace slin

#endif // SLIN_COMPILER_ARTIFACTSTORE_H
