//===- codegen/NativeModule.h - dlopen'd emitted-C++ programs ---*- C++ -*-===//
///
/// \file
/// The native half of Engine::Native: a CompiledProgram's op tapes (and
/// willing native-filter batch kernels) lowered to one C++ translation
/// unit (codegen/CxxBackend.h), compiled out-of-process into a shared
/// object, and dlopen'd here. A NativeModule is the loaded library plus
/// the per-flat-node function table; CompiledExecutor calls these
/// functions instead of the tape dispatch loop when one is attached.
///
/// The contract is *bit-identity with the op-tape interpreter*: the
/// emitted code replicates runImpl's arithmetic exactly and is compiled
/// with -ffp-contract=off (wir/CxxEmit.h), so Engine::Native output
/// streams are byte-for-byte equal to Engine::Compiled's.
///
/// NativeModuleCache memoizes modules per process under the same digest
/// pair the ProgramCache uses — {structuralHash(optimized root),
/// hashOptions} — and, when the artifact store is configured, keeps the
/// built .so on disk keyed additionally by {format version, build flags,
/// codegen version}: a warm process (or fleet neighbour) dlopens the
/// cached object with zero passes and zero codegen. SLIN_NO_CACHE=1
/// bypasses the disk tier per call, exactly like the program store.
///
/// Everything here degrades: no toolchain (SLIN_CXX overrides discovery;
/// SLIN_NO_NATIVE=1 disables codegen outright), a failed compile, or a
/// failed dlopen makes get() return null with a human-readable reason —
/// recorded once per key (negative caching), surfaced through
/// CompileResult::DegradeReason — and execution stays on the op tapes.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_CODEGEN_NATIVEMODULE_H
#define SLIN_CODEGEN_NATIVEMODULE_H

#include "support/Hashing.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slin {

class CompiledProgram;

namespace codegen {

/// Host services passed to every emitted work function. Mirrored in the
/// generated TU's preamble as `SlinNativeCtx` — a layout-matched POD; any
/// change here must bump codegenVersion() and the preamble together.
struct NativeCtx {
  double *const *Fld;   ///< per-field data pointers (WorkFrame::FldPtrs)
  const int32_t *FldSz; ///< per-field sizes, for bounds checks
  void *Sink;           ///< opaque print-sink (the Printed vector)
  void (*Print)(void *Sink, double V);
  void (*Fail)(const char *Msg); ///< noreturn: diagnostics ladder
};

/// An emitted work function: K consecutive firings, In at firing 0's
/// peek window, Out at its output cursor (wir/CxxEmit.h documents the
/// exact layout and semantics).
using WorkFn = void (*)(const NativeCtx *Ctx, const double *In, double *Out,
                        long K);

/// An emitted stateless batch kernel (native-filter GEMM): K windows in,
/// K outputs out — the signature of NativeFilter::fireBatch's core.
using BatchFn = void (*)(const double *In, double *Out, long K);

/// Per-flat-node entry points; null where nothing was emitted (the
/// executor keeps its host path for that node).
struct NodeFns {
  WorkFn Work = nullptr;
  WorkFn Init = nullptr;  ///< init-work tape, fired once (K = 1)
  BatchFn Batch = nullptr;
};

/// Bumped whenever the emitted source, the NativeCtx ABI, the symbol
/// naming scheme or the build flags change: cached objects from older
/// schemes become plain misses.
uint32_t codegenVersion();

/// A loaded shared object plus its node function table. Immutable;
/// shareable across executors and threads (emitted code is reentrant —
/// all mutable state lives in the caller's buffers and fields).
class NativeModule {
public:
  ~NativeModule();
  NativeModule(const NativeModule &) = delete;
  NativeModule &operator=(const NativeModule &) = delete;

  /// dlopens \p Path and resolves slin_f<i>[_init|_batch] for each of
  /// \p NumNodes flat nodes, verifying the embedded ABI version. Null on
  /// any failure with the reason in \p Err.
  static std::shared_ptr<const NativeModule>
  open(const std::string &Path, size_t NumNodes, std::string *Err);

  /// Entry points for flat node \p NodeIdx.
  const NodeFns &node(size_t NodeIdx) const { return Fns[NodeIdx]; }

  /// True when at least one function was emitted.
  bool hasAnyFn() const { return AnyFn; }

private:
  NativeModule() = default;

  void *Handle = nullptr;
  std::vector<NodeFns> Fns;
  bool AnyFn = false;
};

using NativeModuleRef = std::shared_ptr<const NativeModule>;

/// Process-wide memoization of native modules, with the ArtifactStore
/// .so tier underneath (consulted per call through enabledGlobal(), so
/// SLIN_NO_CACHE=1 bypasses disk but keeps in-process memoization).
class NativeModuleCache {
public:
  static NativeModuleCache &global();

  /// The module for \p P, building it on first request. Null when native
  /// codegen is unavailable for this program — \p DegradeReason (may be
  /// null) then explains why. Failures are negatively cached per key so
  /// a missing toolchain is probed once, not per run.
  NativeModuleRef get(const CompiledProgram &P,
                      std::string *DegradeReason = nullptr);

  /// Drops every memoized module and negative entry (test hook; modules
  /// still referenced by executors stay alive through their shared_ptr).
  void clear();

  struct Stats {
    uint64_t MemHits = 0;   ///< served from the in-process map
    uint64_t Misses = 0;    ///< had to consult disk or build
    uint64_t DiskHits = 0;  ///< dlopened a stored .so (zero codegen)
    uint64_t Compiles = 0;  ///< out-of-process compiler invocations
    uint64_t CompileFailures = 0;
    uint64_t DlopenFailures = 0;
    uint64_t Degrades = 0;  ///< get() calls answered null
  };
  Stats stats() const;
  void resetStats();

private:
  struct Entry {
    NativeModuleRef Module; ///< null: negatively cached failure
    std::string Reason;
  };
  struct Key {
    HashDigest Structure;
    HashDigest Options;
    bool operator<(const Key &O) const {
      return Structure != O.Structure ? Structure < O.Structure
                                      : Options < O.Options;
    }
  };

  mutable std::mutex Mutex;
  std::map<Key, Entry> Entries;
  Stats Counters;
};

} // namespace codegen
} // namespace slin

#endif // SLIN_CODEGEN_NATIVEMODULE_H
