//===- codegen/NativeModule.cpp - dlopen'd emitted-C++ programs -------------==//

#include "codegen/NativeModule.h"

#include "codegen/CxxBackend.h"
#include "compiler/Program.h"
#include "compiler/StructuralHash.h"
#include "support/FaultInjection.h"
#include "support/StatsRegistry.h"

#include <dlfcn.h>
#include <unistd.h>

using namespace slin;
using namespace slin::codegen;

uint32_t slin::codegen::codegenVersion() { return 1; }

//===----------------------------------------------------------------------===//
// NativeModule
//===----------------------------------------------------------------------===//

NativeModule::~NativeModule() {
  if (Handle)
    ::dlclose(Handle);
}

NativeModuleRef NativeModule::open(const std::string &Path, size_t NumNodes,
                                   std::string *Err) {
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = Why;
    return nullptr;
  };
  if (faults::shouldFail(faults::Point::CodegenDlopenFail))
    return Fail("injected dlopen failure");

  void *H = ::dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!H) {
    const char *D = ::dlerror();
    return Fail(D ? D : "dlopen failed");
  }

  std::shared_ptr<NativeModule> M(new NativeModule());
  M->Handle = H; // owned from here; destructor dlcloses on any exit

  void *Abi = ::dlsym(H, "slin_abi_version_");
  if (!Abi)
    return Fail("object has no slin_abi_version_ symbol");
  if (*static_cast<const unsigned *>(Abi) != codegenVersion())
    return Fail("object built by a different codegen scheme");

  M->Fns.resize(NumNodes);
  for (size_t I = 0; I != NumNodes; ++I) {
    std::string Base = "slin_f" + std::to_string(I);
    NodeFns &F = M->Fns[I];
    F.Work = reinterpret_cast<WorkFn>(::dlsym(H, Base.c_str()));
    F.Init = reinterpret_cast<WorkFn>(::dlsym(H, (Base + "_init").c_str()));
    F.Batch =
        reinterpret_cast<BatchFn>(::dlsym(H, (Base + "_batch").c_str()));
    if (F.Work || F.Init || F.Batch)
      M->AnyFn = true;
  }
  return M;
}

//===----------------------------------------------------------------------===//
// NativeModuleCache
//===----------------------------------------------------------------------===//

NativeModuleCache &NativeModuleCache::global() {
  static NativeModuleCache C;
  return C;
}

NativeModuleRef NativeModuleCache::get(const CompiledProgram &P,
                                       std::string *DegradeReason) {
  auto Reason = [&](const std::string &Why) {
    if (DegradeReason)
      *DegradeReason = Why;
  };
  // Checked per call, not cached: tests and serving processes flip it
  // at runtime, and the check is one getenv.
  if (nativeDisabled()) {
    Reason("native codegen disabled (SLIN_NO_NATIVE)");
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Degrades;
    return nullptr;
  }

  Key K{structuralHash(P.root()), hashOptions(P.options())};
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(K);
    if (It != Entries.end()) {
      ++Counters.MemHits;
      if (!It->second.Module) {
        // Negative cache: a missing toolchain or failing compile is
        // probed once per program, not once per run.
        Reason(It->second.Reason);
        ++Counters.Degrades;
      }
      return It->second.Module;
    }
    ++Counters.Misses;
  }

  // Disk tier (bypassed by SLIN_NO_CACHE, like the program store): a
  // stored object dlopens with zero passes and zero codegen.
  ArtifactStore *Store = ArtifactStore::enabledGlobal();
  ArtifactStore::Key SK{K.Structure, K.Options};
  if (Store) {
    std::string Path = Store->objectPathFor(SK, codegenVersion());
    if (::access(Path.c_str(), R_OK) == 0) {
      std::string OpenErr;
      NativeModuleRef M = NativeModule::open(Path, P.graph().Nodes.size(),
                                             &OpenErr);
      std::lock_guard<std::mutex> Lock(Mutex);
      if (M) {
        ++Counters.DiskHits;
        Entries[K] = {M, std::string()};
        return M;
      }
      // Unloadable object (corrupt, foreign, injected failure): evict
      // it and fall through to a fresh build.
      ++Counters.DlopenFailures;
      ::unlink(Path.c_str());
    }
  }

  BuildResult R = buildNativeModule(P, Store, SK);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (R.CompilerRan)
      ++Counters.Compiles;
    if (R.CompileFailed)
      ++Counters.CompileFailures;
    if (R.DlopenFailed)
      ++Counters.DlopenFailures;
    if (!R.Module) {
      ++Counters.Degrades;
      Reason(R.Error);
    }
    Entries[K] = {R.Module, R.Error};
  }
  return R.Module;
}

void NativeModuleCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
}

NativeModuleCache::Stats NativeModuleCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

void NativeModuleCache::resetStats() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters = Stats();
}

namespace {
/// Publishes the native-module cache's counters into the unified
/// snapshot (support/StatsRegistry.h).
const slin::StatsRegistry::Registration NativeCacheStatsReg(
    "native-cache", [](slin::StatsRegistry::Counters &C) {
      NativeModuleCache::Stats S = NativeModuleCache::global().stats();
      C.emplace_back("mem_hits", S.MemHits);
      C.emplace_back("misses", S.Misses);
      C.emplace_back("disk_hits", S.DiskHits);
      C.emplace_back("compiles", S.Compiles);
      C.emplace_back("compile_failures", S.CompileFailures);
      C.emplace_back("dlopen_failures", S.DlopenFailures);
      C.emplace_back("degrades", S.Degrades);
    });
} // namespace
