//===- codegen/CxxBackend.h - Emit, compile and load native code *- C++ -*-===//
///
/// \file
/// The build half of the native engine: walks a CompiledProgram, emits
/// one self-contained C++ translation unit (preamble with the
/// SlinNativeCtx ABI and failure helpers, then one function per firing
/// tape via wir/CxxEmit.h plus batch kernels from native filters that
/// implement emitBatchCxx), compiles it out-of-process with the
/// discovered toolchain —
///
///     $CXX -O3 -march=native -ffp-contract=off -fPIC -shared
///
/// (-ffp-contract=off is load-bearing: it forbids FMA contraction, the
/// one -march=native licence that would change rounding and break
/// bit-identity with the interpreter) — and dlopens the result.
///
/// Toolchain discovery: SLIN_CXX names the compiler verbatim (no
/// probing; a nonexistent path degrades cleanly — the CI no-toolchain
/// arm). Unset, the first of c++ / g++ / clang++ on PATH wins, resolved
/// once per process. The invocation is plain `$CXX <flags> src -o out`,
/// so a ccache shim named by SLIN_CXX works unchanged.
///
/// When the artifact store is enabled the object is compiled straight
/// into the store directory (atomic publish: temp name, fsync, rename)
/// and dlopened from its final path; otherwise it lives in a mkdtemp
/// scratch directory that is removed after dlopen (the mapping
/// survives unlinking).
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_CODEGEN_CXXBACKEND_H
#define SLIN_CODEGEN_CXXBACKEND_H

#include "codegen/NativeModule.h"
#include "compiler/ArtifactStore.h"

#include <string>

namespace slin {

class CompiledProgram;

namespace codegen {

/// The C++ compiler to invoke: $SLIN_CXX verbatim when set (even if
/// missing — failure then surfaces at compile time, deterministically),
/// else the first of c++/g++/clang++ on PATH (cached per process).
/// Empty string: no toolchain.
std::string discoverCompiler();

/// True when native codegen is administratively off (SLIN_NO_NATIVE=1).
bool nativeDisabled();

/// Emits the complete translation unit for \p P into \p Src (replacing
/// its contents). Returns the number of functions emitted (0: nothing in
/// this program lowers — callers should degrade without invoking a
/// compiler).
int emitProgramSource(const CompiledProgram &P, std::string &Src);

/// What one emit + compile + publish + dlopen attempt produced. Null
/// Module means degradation; Error then has the human-readable reason
/// and the flags say which stage broke (for the cache's stats).
struct BuildResult {
  NativeModuleRef Module;
  std::string Error;
  bool CompilerRan = false;   ///< an out-of-process compile was attempted
  bool CompileFailed = false;
  bool DlopenFailed = false;
};

/// Builds \p P's native module. With \p Store non-null the object is
/// compiled into the store directory and atomically published under
/// {\p K, codegenVersion()} (a publish failure costs only the disk
/// tier: the module is dlopened before the rename, so its mapping
/// survives). Null \p Store: scratch compile, object deleted after
/// dlopen. Fault points codegen-cc-fail / codegen-dlopen-fail fire
/// here and in NativeModule::open.
BuildResult buildNativeModule(const CompiledProgram &P, ArtifactStore *Store,
                              const ArtifactStore::Key &K);

} // namespace codegen
} // namespace slin

#endif // SLIN_CODEGEN_CXXBACKEND_H
