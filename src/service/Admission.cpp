//===- service/Admission.cpp - Serving set and request admission ----------===//
///
/// \file
/// Startup warming and the per-request admission/execution path behind
/// service/Admission.h.
///
//===----------------------------------------------------------------------===//

#include "service/Admission.h"

#include "apps/Benchmarks.h"
#include "codegen/NativeModule.h"
#include "compiler/ArtifactStore.h"

#include <utility>

using namespace slin;
using namespace slin::service;

Admission::Admission(ServiceConfig C) : Cfg(std::move(C)) {}

Admission::~Admission() = default;

Admission::Counters Admission::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counts;
}

std::vector<std::string> Admission::graphs() const {
  std::vector<std::string> Names;
  Names.reserve(Entries.size());
  for (const auto &E : Entries)
    Names.push_back(E->Name);
  return Names;
}

Admission::Entry *Admission::findEntry(const std::string &Name) {
  for (auto &E : Entries)
    if (E->Name == Name)
      return E.get();
  return nullptr;
}

Status Admission::start() {
  // Bulk-warm the program cache from the artifact store first, so the
  // per-graph compiles below resolve without running a single pass on a
  // restart against a populated store.
  if (Cfg.Prefetch)
    if (ArtifactStore *Store = ArtifactStore::enabledGlobal()) {
      size_t N = ProgramCache::global().prefetchFrom(*Store);
      std::lock_guard<std::mutex> Lock(Mutex);
      Counts.PrefetchedArtifacts = N;
    }

  std::vector<std::string> Names = Cfg.Graphs;
  if (Names.empty())
    for (const auto &B : apps::allBenchmarks())
      Names.push_back(B.Name);

  for (const std::string &Name : Names) {
    const apps::BenchmarkEntry *Found = nullptr;
    for (const auto &B : apps::allBenchmarks())
      if (B.Name == Name) {
        Found = &B;
        break;
      }
    if (!Found)
      return Status(ErrorCode::Internal,
                    "unknown serving-set graph '" + Name + "'");
    if (findEntry(Name))
      continue; // configured twice; one pool is plenty

    StreamPtr Root = Found->Build();
    PipelineOptions Opts;
    Opts.Mode = Cfg.Mode;
    Opts.Exec.Eng = Engine::Compiled;
    CompilerPipeline Pipeline(Opts);
    Expected<CompileResult> ER = Pipeline.tryCompile(*Root);
    if (!ER.hasValue())
      return Status(ErrorCode::Internal,
                    "serving-set graph '" + Name +
                        "' failed to compile: " + ER.status().message());
    CompileResult R = ER.take();
    if (!R.Program)
      return Status(ErrorCode::Internal,
                    "serving-set graph '" + Name + "' produced no program");

    auto E = std::make_unique<Entry>();
    E->Name = Name;
    E->Prog = R.Program;
    E->Pool = std::make_unique<ExecutorPool>(R.Program, Cfg.Workers);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (R.ProgramCacheHit || R.Program->loadedFromArtifact())
        ++Counts.WarmStarts;
      else
        ++Counts.StartupCompiles;
    }
    Entries.push_back(std::move(E));
  }

  // Publish admission + aggregated pool counters once the serving set
  // exists; the registration dies with this object, so a stopped
  // service vanishes from snapshots instead of dangling.
  StatsReg = StatsRegistry::Registration("service", [this](
                                                        StatsRegistry::Counters
                                                            &Out) {
    Counters C = counters();
    Out.emplace_back("requests", C.Requests);
    Out.emplace_back("served", C.Served);
    Out.emplace_back("rejected", C.Rejected);
    Out.emplace_back("timeouts", C.Timeouts);
    Out.emplace_back("failures", C.Failures);
    Out.emplace_back("degraded", C.Degraded);
    Out.emplace_back("prefetched_artifacts", C.PrefetchedArtifacts);
    Out.emplace_back("warm_starts", C.WarmStarts);
    Out.emplace_back("startup_compiles", C.StartupCompiles);
    uint64_t Served = 0, Timeouts = 0, Failures = 0, Depth = 0;
    for (const auto &E : Entries) {
      ExecutorPool::Stats S = E->Pool->stats();
      Served += S.Served;
      Timeouts += S.Timeouts;
      Failures += S.Failures;
      Depth += E->Pool->queueDepth();
    }
    Out.emplace_back("pool_served", Served);
    Out.emplace_back("pool_timeouts", Timeouts);
    Out.emplace_back("pool_failures", Failures);
    Out.emplace_back("pool_queue_depth", Depth);
  });
  return Status::ok();
}

RunResponse Admission::run(const RunRequest &R) {
  RunResponse Resp;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counts.Requests;
  }

  Entry *E = findEntry(R.Graph);
  if (!E) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counts.Rejected;
    Resp.St = Status(ErrorCode::Internal,
                     "graph '" + R.Graph + "' is not in the serving set");
    return Resp;
  }
  if (E->Pool->queueDepth() >= Cfg.MaxQueueDepth) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counts.Rejected;
    Resp.St = Status(ErrorCode::Overloaded,
                     "queue depth for '" + R.Graph + "' is at the cap (" +
                         std::to_string(Cfg.MaxQueueDepth) + ")");
    return Resp;
  }

  ExecutorPool::Request Req;
  Req.Input = R.Input;
  Req.NOutputs = std::min(R.NOutputs ? R.NOutputs : Cfg.DefaultOutputs,
                          Cfg.MaxOutputs);
  Req.CountOps = R.CountOps;
  Req.Eng = R.Eng;
  Req.Latency = R.Latency;
  Req.DeadlineMillis =
      R.DeadlineMillis > 0 ? R.DeadlineMillis : Cfg.DefaultDeadlineMillis;

  if (R.Eng == Engine::Native) {
    // Resolve the program's native module once; unavailability is the
    // degradation ladder, not an error.
    std::lock_guard<std::mutex> Lock(E->NativeMutex);
    if (!E->NativeResolved) {
      E->Native = codegen::NativeModuleCache::global().get(
          *E->Prog, &E->NativeDegradeReason);
      E->NativeResolved = true;
    }
    if (E->Native) {
      Req.Native = E->Native;
    } else {
      Resp.Degraded = true;
      Resp.DegradeReason = E->NativeDegradeReason.empty()
                               ? "native codegen unavailable"
                               : E->NativeDegradeReason;
    }
  }

  ExecutorPool::Result Result = E->Pool->submit(std::move(Req)).get();
  Resp.St = Result.St;
  Resp.ServerSeconds = Result.Seconds;
  Resp.FirstOutputSeconds = Result.FirstOutputSeconds;
  if (Result.St.isOk()) {
    Resp.Outputs = std::move(Result.Outputs);
    Resp.Flops = static_cast<uint64_t>(Result.Ops.flops());
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  if (Result.St.isOk())
    ++Counts.Served;
  else if (Result.St.code() == ErrorCode::Timeout ||
           Result.St.code() == ErrorCode::Cancelled)
    ++Counts.Timeouts;
  else
    ++Counts.Failures;
  if (Resp.Degraded)
    ++Counts.Degraded;
  return Resp;
}
