//===- service/Client.h - Blocking service client ---------------*- C++ -*-===//
///
/// \file
/// The client half of the service protocol: a move-only connection
/// wrapper with one blocking method per request kind. Used by the
/// slin-service-client tool, the load-generating bench_service harness
/// and the service tests; anything that can open a socket and speak
/// the frame format (service/Protocol.h) interoperates.
///
/// Every method is strict about the reply: a response whose kind does
/// not echo the request, or whose payload fails the bounds-checked
/// decode, comes back as ErrorCode::Corrupt — a confused server is
/// treated exactly like a corrupt artifact.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SERVICE_CLIENT_H
#define SLIN_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "support/Error.h"
#include "support/StatsRegistry.h"

#include <string>
#include <vector>

namespace slin {
namespace service {

class Client {
public:
  /// Connects to a daemon's Unix-domain socket / loopback TCP port.
  static Expected<Client> connectUnix(const std::string &Path);
  static Expected<Client> connectTcp(int Port);

  Client(Client &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Client &operator=(Client &&O) noexcept;
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  ~Client();

  /// Liveness round-trip.
  Status ping();

  /// Executes \p R on the server. A non-Ok *return* is a transport or
  /// protocol failure; the run's own outcome (timeout, overload,
  /// degradation) is inside the RunResponse.
  Expected<RunResponse> run(const RunRequest &R);

  /// The server's unified counter snapshot (StatsRegistry names).
  Expected<StatsRegistry::Counters> stats();

  /// The serving-set graph names.
  Expected<std::vector<std::string>> listGraphs();

  /// Asks the daemon to exit its serve loop (acknowledged first).
  Status shutdownServer();

private:
  explicit Client(int Fd) : Fd(Fd) {}
  Expected<Response> roundTrip(const Request &Req);

  int Fd = -1;
};

} // namespace service
} // namespace slin

#endif // SLIN_SERVICE_CLIENT_H
