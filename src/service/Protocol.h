//===- service/Protocol.h - Service wire protocol ---------------*- C++ -*-===//
///
/// \file
/// The stream service's wire protocol: length-prefixed binary frames
/// over a Unix or TCP socket, encoded with the same endian-stable
/// Writer/Reader the artifact format uses (support/Serialize.h) — the
/// Reader's untrusted-input discipline (bounds-checked reads, latched
/// failure, trailing-garbage rejection) is exactly what a network
/// daemon needs.
///
/// Framing: a `u32` little-endian payload length, then the payload.
/// A frame larger than `MaxFrameBytes` is a protocol error (the
/// connection is closed) — a length prefix must never size an
/// allocation unchecked.
///
/// Requests (client -> server), tagged by a leading `MsgKind` byte:
///   Ping                  liveness probe, empty payload
///   Run                   graph name, engine, latency flag, output
///                         count, deadline, count-ops flag, input items
///   Stats                 empty; answers the unified counter snapshot
///   ListGraphs            empty; answers the serving-set names
///   Shutdown              asks the daemon to exit its serve loop
///
/// Responses echo the request kind, then carry a Status (code byte +
/// message) and the kind-specific payload. Every outcome — timeout,
/// deadlock, overload, degradation — is a *reply*, never a dropped
/// connection: containment is the service's whole contract.
///
/// The request surface is deliberately shard-agnostic: a client names
/// a graph, an engine and an output count — never shard counts or
/// iteration spans — so future state-composition parallelism (Hou et
/// al.) slots in behind the same API unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SERVICE_PROTOCOL_H
#define SLIN_SERVICE_PROTOCOL_H

#include "exec/Engine.h"
#include "support/Error.h"
#include "support/Serialize.h"
#include "support/StatsRegistry.h"

#include <cstdint>
#include <string>
#include <vector>

namespace slin {
namespace service {

/// Upper bound on any frame's payload (requests carry input samples,
/// responses carry outputs; 16 MiB is orders of magnitude above both).
constexpr uint32_t MaxFrameBytes = 16u << 20;

enum class MsgKind : uint8_t {
  Ping = 1,
  Run = 2,
  Stats = 3,
  ListGraphs = 4,
  Shutdown = 5,
};

struct RunRequest {
  std::string Graph;              ///< serving-set name (apps registry)
  Engine Eng = Engine::Compiled;  ///< Compiled / Parallel / Native
  bool Latency = false;           ///< single-iteration firing
  uint32_t NOutputs = 0;          ///< 0: the server's default window
  int64_t DeadlineMillis = 0;     ///< 0: the server's default deadline
  bool CountOps = false;          ///< report FLOPs (adds overhead)
  std::vector<double> Input;      ///< external input items (often empty)
};

/// A decoded request: the kind tag plus the Run payload when Kind is
/// Run (the other kinds have empty payloads).
struct Request {
  MsgKind Kind = MsgKind::Ping;
  RunRequest Run;
};

struct RunResponse {
  Status St;                  ///< non-Ok: Outputs are absent/meaningless
  bool Degraded = false;      ///< served on a lower rung than requested
  std::string DegradeReason;
  std::vector<double> Outputs;
  uint64_t Flops = 0;             ///< when CountOps was set
  double ServerSeconds = 0.0;     ///< run wall-clock (queueing excluded)
  double FirstOutputSeconds = 0.0; ///< latency mode: time to first output
};

/// A decoded response: kind echo, overall status, and the payload for
/// the echoed kind.
struct Response {
  MsgKind Kind = MsgKind::Ping;
  Status St;
  RunResponse Run;                   ///< Kind == Run
  StatsRegistry::Counters Counters;  ///< Kind == Stats
  std::vector<std::string> Graphs;   ///< Kind == ListGraphs
};

//===----------------------------------------------------------------------===//
// Payload encode/decode
//===----------------------------------------------------------------------===//

void encodeRequest(serial::Writer &W, const Request &R);
void encodeResponse(serial::Writer &W, const Response &R);

/// Decodes one request payload. Malformed bytes (unknown kind, bad
/// engine, truncation, trailing garbage) come back as
/// ErrorCode::Corrupt.
Expected<Request> decodeRequest(const std::vector<uint8_t> &Payload);
Expected<Response> decodeResponse(const std::vector<uint8_t> &Payload);

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

/// Writes one length-prefixed frame. EINTR-immune; any other write
/// failure is an IoError.
Status writeFrame(int Fd, const std::vector<uint8_t> &Payload);

/// Reads one length-prefixed frame into \p Payload. A peer that closed
/// cleanly *between* frames sets \p *Closed (when provided) alongside
/// the non-Ok status; mid-frame EOF, oversize lengths and read errors
/// are plain protocol/IO failures.
Status readFrame(int Fd, std::vector<uint8_t> &Payload,
                 bool *Closed = nullptr);

} // namespace service
} // namespace slin

#endif // SLIN_SERVICE_PROTOCOL_H
