//===- service/Session.cpp - One client connection ------------------------===//
///
/// \file
/// Frame loop and request dispatch behind service/Session.h.
///
//===----------------------------------------------------------------------===//

#include "service/Session.h"

#include "service/Admission.h"
#include "service/Protocol.h"
#include "support/StatsRegistry.h"

using namespace slin;
using namespace slin::service;

namespace {

Status sendResponse(int Fd, const Response &Resp) {
  serial::Writer W;
  encodeResponse(W, Resp);
  return writeFrame(Fd, W.bytes());
}

} // namespace

void service::serveSession(int Fd, Admission &Adm,
                           const std::function<void()> &OnShutdown) {
  std::vector<uint8_t> Payload;
  for (;;) {
    bool Closed = false;
    if (!readFrame(Fd, Payload, &Closed).isOk())
      return; // clean close, torn frame or dead socket alike: done

    Expected<Request> ER = decodeRequest(Payload);
    if (!ER.hasValue()) {
      // The stream is no longer trustworthy; report why, then hang up.
      Response Err;
      Err.Kind = MsgKind::Ping;
      Err.St = ER.status();
      (void)sendResponse(Fd, Err);
      return;
    }
    Request Req = ER.take();

    Response Resp;
    Resp.Kind = Req.Kind;
    switch (Req.Kind) {
    case MsgKind::Ping:
      break;
    case MsgKind::Run:
      // Transport-level St stays Ok: the run's outcome — timeout,
      // overload, deadlock — travels in Run.St.
      Resp.Run = Adm.run(Req.Run);
      break;
    case MsgKind::Stats:
      Resp.Counters = StatsRegistry::global().snapshot();
      break;
    case MsgKind::ListGraphs:
      Resp.Graphs = Adm.graphs();
      break;
    case MsgKind::Shutdown:
      (void)sendResponse(Fd, Resp);
      if (OnShutdown)
        OnShutdown();
      return;
    }
    if (!sendResponse(Fd, Resp).isOk())
      return;
  }
}
