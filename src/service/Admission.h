//===- service/Admission.h - Serving set and request admission --*- C++ -*-===//
///
/// \file
/// The service's brain: a serving set of warm CompiledPrograms (one
/// ExecutorPool per graph) and the admission/execution path every Run
/// request takes. Startup warms the set in two steps — a bulk
/// `ProgramCache::prefetchFrom` over every artifact the global store
/// holds (`ArtifactStore::listArtifacts`), then a pipeline compile per
/// serving-set graph that resolves through the warm cache (a restart
/// against a populated store is *zero* compile passes). Per request:
///
///  * **Admission**: unknown graphs are refused with Internal; a pool
///    whose queue depth reached the configured cap refuses with
///    Overloaded. Refusal is a reply, not a crash or a hang.
///  * **Engine selection + degradation**: Compiled runs the op tapes;
///    Native resolves the program's dlopen'd module once (lazily) and
///    degrades to Compiled — reported, not fatal — when codegen is
///    unavailable (the PR 6 ladder); Parallel runs the sharded backend
///    (which degrades internally to a sequential run on shard
///    anomalies); Dynamic is served as Compiled.
///  * **Deadline**: the request's DeadlineMillis (else the server
///    default, seeded from RuntimeConfig's SLIN_RUN_DEADLINE_MS) bounds
///    the run; expiry returns a Timeout *response* and frees the
///    worker.
///  * **Latency vs throughput**: latency-mode requests fire single
///    steady iterations for a bounded time-to-first-output; throughput
///    requests run the fused batch programs. Same outputs, bit for bit.
///
/// Counters for every step are published under the "service." prefix
/// of the unified StatsRegistry, alongside aggregated per-pool
/// ExecutorPool stats — the daemon's stats request is one snapshot()
/// call.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SERVICE_ADMISSION_H
#define SLIN_SERVICE_ADMISSION_H

#include "compiler/Pipeline.h"
#include "exec/Parallel.h"
#include "service/Protocol.h"
#include "support/StatsRegistry.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slin {
namespace service {

struct ServiceConfig {
  /// Serving-set graph names (apps registry); empty = every benchmark.
  std::vector<std::string> Graphs;
  /// Optimization mode the serving set is compiled with.
  OptMode Mode = OptMode::AutoSel;
  /// Worker threads per graph pool (0: the hardware default).
  int Workers = 0;
  /// Queued-request cap per graph; a deeper queue refuses (Overloaded).
  size_t MaxQueueDepth = 64;
  /// Bulk-load every stored artifact into the program cache at startup.
  bool Prefetch = true;
  /// Applied when a request carries no deadline (0: none).
  int64_t DefaultDeadlineMillis = 0;
  /// Applied when a request asks for 0 outputs.
  uint32_t DefaultOutputs = 256;
  /// Hard per-request output cap (memory bound; larger asks are
  /// clamped, not refused).
  uint32_t MaxOutputs = 1u << 20;
};

class Admission {
public:
  explicit Admission(ServiceConfig Cfg);
  ~Admission();

  Admission(const Admission &) = delete;
  Admission &operator=(const Admission &) = delete;

  /// Warms the serving set (prefetch + compile-or-load) and starts the
  /// pools. Non-Ok when a serving-set graph is unknown or fails even
  /// the Base-mode compile; individual degradations are recorded, not
  /// fatal.
  Status start();

  /// Admits and executes one Run request (blocking; called from
  /// session threads concurrently). Every failure mode is reported in
  /// the response's Status.
  RunResponse run(const RunRequest &R);

  /// Serving-set names, in configuration order.
  std::vector<std::string> graphs() const;

  /// Aggregate admission counters (also published as "service.*").
  struct Counters {
    uint64_t Requests = 0;
    uint64_t Served = 0;        ///< completed Ok
    uint64_t Rejected = 0;      ///< refused at admission (unknown/overload)
    uint64_t Timeouts = 0;      ///< Timeout/Cancelled results
    uint64_t Failures = 0;      ///< other non-Ok results
    uint64_t Degraded = 0;      ///< served on a lower rung than asked
    uint64_t PrefetchedArtifacts = 0; ///< store artifacts bulk-loaded
    uint64_t WarmStarts = 0;    ///< serving-set programs needing no passes
    uint64_t StartupCompiles = 0; ///< serving-set programs compiled cold
  };
  Counters counters() const;

private:
  struct Entry {
    std::string Name;
    CompiledProgramRef Prog;
    std::unique_ptr<ExecutorPool> Pool;
    /// Engine::Native module, resolved once on first use (null after a
    /// degradation; Reason records why).
    std::mutex NativeMutex;
    bool NativeResolved = false;
    codegen::NativeModuleRef Native;
    std::string NativeDegradeReason;
  };

  Entry *findEntry(const std::string &Name);

  ServiceConfig Cfg;
  std::vector<std::unique_ptr<Entry>> Entries;
  mutable std::mutex Mutex; ///< guards Counts
  Counters Counts;
  StatsRegistry::Registration StatsReg;
};

} // namespace service
} // namespace slin

#endif // SLIN_SERVICE_ADMISSION_H
