//===- service/Client.cpp - Blocking service client -----------------------===//
///
/// \file
/// Socket setup and request round-trips behind service/Client.h.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace slin;
using namespace slin::service;

namespace {

Status ioError(const std::string &What) {
  return Status(ErrorCode::IoError, What + ": " + std::strerror(errno));
}

} // namespace

Client::~Client() {
  if (Fd >= 0)
    ::close(Fd);
}

Client &Client::operator=(Client &&O) noexcept {
  if (this != &O) {
    if (Fd >= 0)
      ::close(Fd);
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

Expected<Client> Client::connectUnix(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status(ErrorCode::Internal, "unix socket path too long: " + Path);
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return ioError("socket(unix)");
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Status St = ioError("connect " + Path);
    ::close(Fd);
    return St;
  }
  return Client(Fd);
}

Expected<Client> Client::connectTcp(int Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return ioError("socket(tcp)");
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Status St = ioError("connect 127.0.0.1:" + std::to_string(Port));
    ::close(Fd);
    return St;
  }
  return Client(Fd);
}

Expected<Response> Client::roundTrip(const Request &Req) {
  if (Fd < 0)
    return Status(ErrorCode::Internal, "client is not connected");
  serial::Writer W;
  encodeRequest(W, Req);
  if (Status St = writeFrame(Fd, W.bytes()); !St.isOk())
    return St;
  std::vector<uint8_t> Payload;
  if (Status St = readFrame(Fd, Payload); !St.isOk())
    return St;
  Expected<Response> ER = decodeResponse(Payload);
  if (!ER.hasValue())
    return ER.status();
  Response Resp = ER.take();
  // An error reply to a request the server could not decode echoes
  // Ping; accept the kind mismatch only when it carries that failure.
  if (Resp.Kind != Req.Kind && Resp.St.isOk())
    return Status(ErrorCode::Corrupt, "response kind does not echo request");
  if (!Resp.St.isOk())
    return Resp.St;
  return Resp;
}

Status Client::ping() {
  Request Req;
  Req.Kind = MsgKind::Ping;
  Expected<Response> R = roundTrip(Req);
  return R.hasValue() ? Status::ok() : R.status();
}

Expected<RunResponse> Client::run(const RunRequest &RR) {
  Request Req;
  Req.Kind = MsgKind::Run;
  Req.Run = RR;
  Expected<Response> R = roundTrip(Req);
  if (!R.hasValue())
    return R.status();
  return R.take().Run;
}

Expected<StatsRegistry::Counters> Client::stats() {
  Request Req;
  Req.Kind = MsgKind::Stats;
  Expected<Response> R = roundTrip(Req);
  if (!R.hasValue())
    return R.status();
  return R.take().Counters;
}

Expected<std::vector<std::string>> Client::listGraphs() {
  Request Req;
  Req.Kind = MsgKind::ListGraphs;
  Expected<Response> R = roundTrip(Req);
  if (!R.hasValue())
    return R.status();
  return R.take().Graphs;
}

Status Client::shutdownServer() {
  Request Req;
  Req.Kind = MsgKind::Shutdown;
  Expected<Response> R = roundTrip(Req);
  return R.hasValue() ? Status::ok() : R.status();
}
