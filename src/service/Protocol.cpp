//===- service/Protocol.cpp - Service wire protocol -----------------------===//
///
/// \file
/// Payload encoding/decoding and EINTR-immune frame I/O behind
/// service/Protocol.h.
///
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace slin;
using namespace slin::service;
using namespace slin::serial;

namespace {

Status corrupt(const char *What) {
  return Status(ErrorCode::Corrupt, std::string("malformed frame: ") + What);
}

bool validKind(uint8_t K) {
  return K >= static_cast<uint8_t>(MsgKind::Ping) &&
         K <= static_cast<uint8_t>(MsgKind::Shutdown);
}

void writeStatus(Writer &W, const Status &St) {
  W.u8(static_cast<uint8_t>(St.code()));
  W.str(St.message());
}

Status readStatus(Reader &R) {
  uint8_t Code = R.u8();
  std::string Msg = R.str();
  if (!R.ok() || Code > static_cast<uint8_t>(ErrorCode::Internal))
    return corrupt("status");
  if (Code == static_cast<uint8_t>(ErrorCode::Ok))
    return Status::ok();
  // A non-Ok code with an empty message is still representable.
  return Status(static_cast<ErrorCode>(Code),
                Msg.empty() ? "(no message)" : Msg);
}

} // namespace

void service::encodeRequest(Writer &W, const Request &R) {
  W.u8(static_cast<uint8_t>(R.Kind));
  if (R.Kind != MsgKind::Run)
    return;
  W.str(R.Run.Graph);
  W.u8(static_cast<uint8_t>(R.Run.Eng));
  W.boolean(R.Run.Latency);
  W.u32(R.Run.NOutputs);
  W.i64(R.Run.DeadlineMillis);
  W.boolean(R.Run.CountOps);
  W.f64s(R.Run.Input);
}

Expected<Request> service::decodeRequest(const std::vector<uint8_t> &Payload) {
  Reader R(Payload);
  Request Req;
  uint8_t Kind = R.u8();
  if (!R.ok() || !validKind(Kind))
    return corrupt("request kind");
  Req.Kind = static_cast<MsgKind>(Kind);
  if (Req.Kind == MsgKind::Run) {
    Req.Run.Graph = R.str();
    uint8_t Eng = R.u8();
    if (Eng > static_cast<uint8_t>(Engine::Native))
      return corrupt("engine");
    Req.Run.Eng = static_cast<Engine>(Eng);
    Req.Run.Latency = R.boolean();
    Req.Run.NOutputs = R.u32();
    Req.Run.DeadlineMillis = R.i64();
    Req.Run.CountOps = R.boolean();
    Req.Run.Input = R.f64s();
  }
  if (!R.ok() || !R.atEnd())
    return corrupt("request payload");
  return Req;
}

void service::encodeResponse(Writer &W, const Response &R) {
  W.u8(static_cast<uint8_t>(R.Kind));
  writeStatus(W, R.St);
  switch (R.Kind) {
  case MsgKind::Run:
    writeStatus(W, R.Run.St);
    W.boolean(R.Run.Degraded);
    W.str(R.Run.DegradeReason);
    W.f64s(R.Run.Outputs);
    W.u64(R.Run.Flops);
    W.f64(R.Run.ServerSeconds);
    W.f64(R.Run.FirstOutputSeconds);
    return;
  case MsgKind::Stats:
    W.u32(static_cast<uint32_t>(R.Counters.size()));
    for (const auto &KV : R.Counters) {
      W.str(KV.first);
      W.u64(KV.second);
    }
    return;
  case MsgKind::ListGraphs:
    W.strs(R.Graphs);
    return;
  case MsgKind::Ping:
  case MsgKind::Shutdown:
    return;
  }
}

Expected<Response> service::decodeResponse(const std::vector<uint8_t> &Payload) {
  Reader R(Payload);
  Response Resp;
  uint8_t Kind = R.u8();
  if (!R.ok() || !validKind(Kind))
    return corrupt("response kind");
  Resp.Kind = static_cast<MsgKind>(Kind);
  {
    Status St = readStatus(R);
    if (!R.ok())
      return corrupt("response status");
    Resp.St = St;
  }
  switch (Resp.Kind) {
  case MsgKind::Run: {
    Status St = readStatus(R);
    if (!R.ok())
      return corrupt("run status");
    Resp.Run.St = St;
    Resp.Run.Degraded = R.boolean();
    Resp.Run.DegradeReason = R.str();
    Resp.Run.Outputs = R.f64s();
    Resp.Run.Flops = R.u64();
    Resp.Run.ServerSeconds = R.f64();
    Resp.Run.FirstOutputSeconds = R.f64();
    break;
  }
  case MsgKind::Stats: {
    uint32_t N = R.u32();
    // Count sanity against the remaining bytes: each entry is at least
    // a 4-byte name length plus an 8-byte value.
    if (!R.ok() || N > R.remaining() / 12)
      return corrupt("stats count");
    Resp.Counters.reserve(N);
    for (uint32_t I = 0; I != N && R.ok(); ++I) {
      std::string Name = R.str();
      uint64_t Value = R.u64();
      Resp.Counters.emplace_back(std::move(Name), Value);
    }
    break;
  }
  case MsgKind::ListGraphs:
    Resp.Graphs = R.strs();
    break;
  case MsgKind::Ping:
  case MsgKind::Shutdown:
    break;
  }
  if (!R.ok() || !R.atEnd())
    return corrupt("response payload");
  return Resp;
}

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

namespace {

/// Full read of \p Size bytes. Returns 0 on success, -1 on clean EOF
/// before the first byte, -2 on mid-read EOF, or a positive errno.
int readFully(int Fd, uint8_t *Data, size_t Size) {
  size_t Got = 0;
  while (Got < Size) {
    ssize_t N = ::read(Fd, Data + Got, Size - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errno;
    }
    if (N == 0)
      return Got == 0 ? -1 : -2;
    Got += static_cast<size_t>(N);
  }
  return 0;
}

int writeFully(int Fd, const uint8_t *Data, size_t Size) {
  while (Size > 0) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errno;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return 0;
}

} // namespace

Status service::writeFrame(int Fd, const std::vector<uint8_t> &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return Status(ErrorCode::Internal, "frame exceeds MaxFrameBytes");
  uint8_t Len[4];
  uint32_t N = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I != 4; ++I)
    Len[I] = static_cast<uint8_t>(N >> (8 * I));
  if (int E = writeFully(Fd, Len, sizeof(Len)))
    return Status(ErrorCode::IoError,
                  std::string("frame write: ") + std::strerror(E));
  if (N)
    if (int E = writeFully(Fd, Payload.data(), Payload.size()))
      return Status(ErrorCode::IoError,
                    std::string("frame write: ") + std::strerror(E));
  return Status::ok();
}

Status service::readFrame(int Fd, std::vector<uint8_t> &Payload,
                          bool *Closed) {
  if (Closed)
    *Closed = false;
  uint8_t Len[4];
  int E = readFully(Fd, Len, sizeof(Len));
  if (E == -1) {
    if (Closed)
      *Closed = true;
    return Status(ErrorCode::IoError, "connection closed");
  }
  if (E)
    return Status(ErrorCode::IoError,
                  E == -2 ? "truncated frame header"
                          : std::string("frame read: ") + std::strerror(E));
  uint32_t N = 0;
  for (int I = 0; I != 4; ++I)
    N |= static_cast<uint32_t>(Len[I]) << (8 * I);
  if (N > MaxFrameBytes)
    return Status(ErrorCode::Corrupt,
                  "frame length " + std::to_string(N) +
                      " exceeds the protocol maximum");
  Payload.resize(N);
  if (N) {
    E = readFully(Fd, Payload.data(), N);
    if (E)
      return Status(ErrorCode::IoError,
                    E < 0 ? "truncated frame"
                          : std::string("frame read: ") + std::strerror(E));
  }
  return Status::ok();
}
