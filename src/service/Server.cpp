//===- service/Server.cpp - Stream service daemon core --------------------===//
///
/// \file
/// Listener setup, accept loop and shutdown sequencing behind
/// service/Server.h.
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "service/Session.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <chrono>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace slin;
using namespace slin::service;

namespace {

Status ioError(const std::string &What) {
  return Status(ErrorCode::IoError, What + ": " + std::strerror(errno));
}

} // namespace

Server::Server(ServerConfig C) : Cfg(std::move(C)), Adm(Cfg.Service) {}

Server::~Server() { stop(); }

Status Server::start() {
  if (Started)
    return Status(ErrorCode::Internal, "server already started");

  if (Status St = Adm.start(); !St.isOk())
    return St;

  if (!Cfg.UnixPath.empty()) {
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Cfg.UnixPath.size() >= sizeof(Addr.sun_path))
      return Status(ErrorCode::Internal,
                    "unix socket path too long: " + Cfg.UnixPath);
    std::strncpy(Addr.sun_path, Cfg.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return ioError("socket(unix)");
    ::unlink(Cfg.UnixPath.c_str()); // replace any stale socket file
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) < 0) {
      Status St = ioError("bind " + Cfg.UnixPath);
      ::close(ListenFd);
      ListenFd = -1;
      return St;
    }
  } else if (Cfg.TcpPort >= 0) {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return ioError("socket(tcp)");
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // never a real network
    Addr.sin_port = htons(static_cast<uint16_t>(Cfg.TcpPort));
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) < 0) {
      Status St = ioError("bind 127.0.0.1:" + std::to_string(Cfg.TcpPort));
      ::close(ListenFd);
      ListenFd = -1;
      return St;
    }
    sockaddr_in Bound{};
    socklen_t Len = sizeof(Bound);
    if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len) ==
        0)
      ResolvedPort = ntohs(Bound.sin_port);
  } else {
    return Status(ErrorCode::Internal,
                  "server config names neither a unix path nor a TCP port");
  }

  if (::listen(ListenFd, 64) < 0) {
    Status St = ioError("listen");
    ::close(ListenFd);
    ListenFd = -1;
    return St;
  }

  Started = true;
  Acceptor = std::thread([this] { acceptLoop(); });
  return Status::ok();
}

void Server::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // listener closed (stop()) or fatally broken
    }
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping) {
      ::close(Fd);
      return;
    }
    SessionFds.push_back(Fd);
    // The session thread owns Fd: it alone closes it, so stop() can
    // safely shutdown() a socket a session is mid-read on without the
    // descriptor being recycled under that thread.
    SessionThreads.emplace_back([this, Fd] {
      serveSession(Fd, Adm, [this] { requestShutdown(); });
      {
        std::lock_guard<std::mutex> L(Mutex);
        auto It = std::find(SessionFds.begin(), SessionFds.end(), Fd);
        if (It != SessionFds.end())
          SessionFds.erase(It);
      }
      ::close(Fd);
    });
  }
}

void Server::requestShutdown() {
  std::lock_guard<std::mutex> Lock(Mutex);
  ShutdownFlag = true;
  ShutdownCv.notify_all();
}

void Server::waitForShutdown(const std::function<bool()> &AlsoStop) {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (!ShutdownFlag) {
    if (AlsoStop) {
      ShutdownCv.wait_for(Lock, std::chrono::milliseconds(200));
      if (AlsoStop())
        return;
    } else {
      ShutdownCv.wait(Lock);
    }
  }
}

void Server::stop() {
  if (!Started)
    return;

  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping)
      return;
    Stopping = true;
    // Wake blocked session reads; each thread exits its frame loop and
    // closes its own descriptor.
    for (int Fd : SessionFds)
      ::shutdown(Fd, SHUT_RDWR);
    Threads.swap(SessionThreads);
  }

  // Closing the listener pops the acceptor out of accept().
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  if (Acceptor.joinable())
    Acceptor.join();
  {
    // Sessions accepted in the window before Stopping was observed.
    std::lock_guard<std::mutex> Lock(Mutex);
    for (int Fd : SessionFds)
      ::shutdown(Fd, SHUT_RDWR);
    for (auto &T : SessionThreads)
      Threads.push_back(std::move(T));
    SessionThreads.clear();
  }
  for (auto &T : Threads)
    if (T.joinable())
      T.join();
  if (!Cfg.UnixPath.empty())
    ::unlink(Cfg.UnixPath.c_str());
  ListenFd = -1;
}
