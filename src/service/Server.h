//===- service/Server.h - Stream service daemon core ------------*- C++ -*-===//
///
/// \file
/// The long-lived serving loop: bind a Unix or loopback-TCP listener,
/// warm the admission layer's serving set, then accept connections and
/// serve each on its own session thread. The "compile once, serve many
/// users" endgame of the whole artifact stack — the pipeline compiles
/// (or prefetches) a graph once, and every subsequent request anywhere
/// on the machine is a warm ExecutorPool dispatch.
///
/// Lifecycle: `start()` warms and binds (non-Ok on any failure —
/// unknown serving-set graph, unbindable socket); `waitForShutdown()`
/// parks the caller until a client's Shutdown request or
/// `requestShutdown()` (signal handlers set an atomic and let the
/// poll-predicate observe it); `stop()` closes the listener, shuts
/// down live sessions and joins every thread. The destructor stops.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SERVICE_SERVER_H
#define SLIN_SERVICE_SERVER_H

#include "service/Admission.h"
#include "support/Error.h"

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace slin {
namespace service {

struct ServerConfig {
  /// Non-empty: listen on this Unix-domain socket path (any stale file
  /// there is replaced).
  std::string UnixPath;
  /// >= 0: listen on this loopback TCP port instead (0: ephemeral —
  /// read the resolved port back with tcpPort()). Loopback only; the
  /// daemon has no authentication story and must not face a network.
  int TcpPort = -1;
  ServiceConfig Service;
};

class Server {
public:
  explicit Server(ServerConfig Cfg);
  ~Server(); ///< stop()s if still running

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Warms the serving set, binds the listener and starts accepting.
  Status start();

  /// Closes the listener, shuts down every live session socket and
  /// joins all threads. Idempotent.
  void stop();

  /// Flags shutdown and wakes waitForShutdown(). Callable from any
  /// thread (sessions call it on a client Shutdown request) — but not
  /// from a signal handler; handlers should set an atomic and rely on
  /// waitForShutdown's poll predicate.
  void requestShutdown();

  /// Parks until requestShutdown() — or until \p AlsoStop (polled a
  /// few times a second, when provided) returns true.
  void waitForShutdown(const std::function<bool()> &AlsoStop = nullptr);

  /// The resolved TCP port (after start() with TcpPort >= 0), else -1.
  int tcpPort() const { return ResolvedPort; }

  Admission &admission() { return Adm; }

private:
  void acceptLoop();

  ServerConfig Cfg;
  Admission Adm;
  int ListenFd = -1;
  int ResolvedPort = -1;
  std::thread Acceptor;
  bool Started = false;

  std::mutex Mutex; ///< guards Sessions, SessionThreads, ShutdownFlag
  std::condition_variable ShutdownCv;
  bool ShutdownFlag = false;
  bool Stopping = false;
  std::vector<int> SessionFds;
  std::vector<std::thread> SessionThreads;
};

} // namespace service
} // namespace slin

#endif // SLIN_SERVICE_SERVER_H
