//===- service/Session.h - One client connection ----------------*- C++ -*-===//
///
/// \file
/// The per-connection request loop: read a frame, decode, dispatch
/// (Ping / Run via the admission layer / Stats via the unified
/// registry / ListGraphs / Shutdown), reply. One session is one
/// client; sessions run on their own threads (the Server owns them)
/// and requests within a session are sequential — concurrency comes
/// from concurrent connections, mirroring how a load generator drives
/// the daemon.
///
/// A malformed frame earns an error reply and a closed connection
/// (the stream can no longer be trusted); a request whose *execution*
/// fails earns a normal reply carrying the non-Ok Status — the
/// connection survives, because containment is the service contract.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SERVICE_SESSION_H
#define SLIN_SERVICE_SESSION_H

#include <functional>

namespace slin {
namespace service {

class Admission;

/// Serves one accepted connection until the peer closes, the stream
/// turns malformed, or a Shutdown request arrives. \p OnShutdown is
/// invoked (after the acknowledging reply) when the client asks the
/// daemon to exit. Does not close \p Fd — the accept loop owns it.
void serveSession(int Fd, Admission &Adm,
                  const std::function<void()> &OnShutdown);

} // namespace service
} // namespace slin

#endif // SLIN_SERVICE_SESSION_H
