//===- apps/Benchmarks.h - The nine benchmark programs ----------*- C++ -*-===//
///
/// \file
/// The benchmark suite of Section 5.1 (source code in Appendix A, stream
/// graphs in Appendix B): FIR, RateConvert, TargetDetect, FMRadio, Radar,
/// FilterBank, Vocoder, Oversampler and DToA, assembled from the shared
/// DSP components in Dsp.h. Each builder is parameterized where a scaling
/// experiment sweeps it (FIR taps for Figures 5-8/5-9/5-10, Radar
/// channels/beams for Figure 5-11).
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_APPS_BENCHMARKS_H
#define SLIN_APPS_BENCHMARKS_H

#include "graph/Stream.h"

#include <functional>
#include <string>
#include <vector>

namespace slin {
namespace apps {

/// FIR (Figure A-3): source -> 256-tap low-pass -> sink.
StreamPtr buildFIR(int Taps = 256);

/// RateConvert (Figure A-6): 2/3 sampling-rate conversion via
/// Expander(2) -> LowPass(3, pi/3, Taps) -> Compressor(3).
StreamPtr buildRateConvert(int Taps = 300);

/// TargetDetect (Figures A-7/A-8): four matched filters in parallel with
/// threshold detection.
StreamPtr buildTargetDetect(int Taps = 300);

/// FMRadio (Figures A-9/A-10): demodulator plus a Bands-way equalizer of
/// Taps-tap band filters.
StreamPtr buildFMRadio(int Taps = 64, int Bands = 10);

/// Radar front end (Appendix B-4/B-5, after the PCA benchmark [23]):
/// Channels input channels (complex FIR decimation chains) feeding Beams
/// beamformers with matched filters and magnitude detectors.
struct RadarParams {
  int Channels = 12;
  int Beams = 4;
  int CoarseTaps = 32;
  int CoarseDecimation = 4;
  int FineTaps = 16;
  int FineDecimation = 2;
  int MatchedTaps = 16;
};
StreamPtr buildRadar();
StreamPtr buildRadar(const RadarParams &Params);

/// FilterBank (Figure A-13): Bands-way analysis/processing/synthesis
/// multirate decomposition.
StreamPtr buildFilterBank(int Bands = 3, int Taps = 100);

/// Vocoder (Figure A-14): pitch detector in parallel with a four-band
/// channel filter bank.
StreamPtr buildVocoder(int PitchWindow = 100, int Decimation = 50,
                       int BandTaps = 64);

/// Oversampler (Figure A-15): four 2x oversampling stages.
StreamPtr buildOversampler(int Stages = 4, int Taps = 64);

/// DToA (Figure A-16): oversampler, first-order noise shaper (a
/// feedback loop), and a smoothing low-pass.
StreamPtr buildDToA(int Taps = 256, int OversampleTaps = 64);

/// Name -> builder registry over the paper's default parameters, in the
/// paper's presentation order.
struct BenchmarkEntry {
  std::string Name;
  std::function<StreamPtr()> Build;
};
const std::vector<BenchmarkEntry> &allBenchmarks();

} // namespace apps
} // namespace slin

#endif // SLIN_APPS_BENCHMARKS_H
