//===- apps/Dsp.cpp - Shared DSP filter library -------------------------------==//

#include "apps/Dsp.h"

#include "wir/Build.h"

#include <cmath>

using namespace slin;
using namespace slin::apps;
using namespace slin::wir;
using namespace slin::wir::build;

namespace {
constexpr double Pi = 3.14159265358979323846;
}

std::vector<double> apps::lowPassCoeffs(double G, double CutoffRad, int Taps,
                                        bool Hamming) {
  std::vector<double> H(static_cast<size_t>(Taps));
  double M = Taps - 1;
  int Offset = Taps / 2;
  for (int I = 0; I != Taps; ++I) {
    double Val;
    if (I == Offset)
      Val = G * CutoffRad / Pi; // lim sin(x)/x
    else
      Val = G * std::sin(CutoffRad * (I - Offset)) / (Pi * (I - Offset));
    if (Hamming)
      Val *= 0.54 - 0.46 * std::cos(2.0 * Pi * I / M);
    H[static_cast<size_t>(I)] = Val;
  }
  return H;
}

std::vector<double> apps::highPassCoeffs(double G, double CutoffRad,
                                         int Taps) {
  // Spectral inversion of the low-pass design.
  std::vector<double> H = lowPassCoeffs(G, CutoffRad, Taps);
  for (double &V : H)
    V = -V;
  H[static_cast<size_t>(Taps / 2)] += G;
  return H;
}

std::unique_ptr<Filter> apps::makeFIRFilter(std::vector<double> H,
                                            const std::string &Name,
                                            int Decimation) {
  int Taps = static_cast<int>(H.size());
  std::vector<FieldDef> Fields = {FieldDef::constArray("h", std::move(H))};
  StmtList Body;
  Body.push_back(assign("sum", cst(0)));
  Body.push_back(loop(
      "i", cst(0), cst(Taps),
      stmts(assign("sum",
                   add(vr("sum"), mul(fldAt("h", vr("i")), peek(vr("i"))))))));
  Body.push_back(push(vr("sum")));
  for (int I = 0; I != 1 + Decimation; ++I)
    Body.push_back(popStmt());
  WorkFunction W(std::max(Taps, 1 + Decimation), 1 + Decimation, 1,
                 std::move(Body));
  return std::make_unique<Filter>(Name, std::move(Fields), std::move(W));
}

std::unique_ptr<Filter> apps::makeLowPassFilter(double G, double CutoffRad,
                                                int Taps, int Decimation,
                                                bool Hamming) {
  return makeFIRFilter(lowPassCoeffs(G, CutoffRad, Taps, Hamming),
                       "LowPassFilter", Decimation);
}

std::unique_ptr<Filter> apps::makeHighPassFilter(double G, double CutoffRad,
                                                 int Taps) {
  return makeFIRFilter(highPassCoeffs(G, CutoffRad, Taps), "HighPassFilter");
}

StreamPtr apps::makeBandPassFilter(double Gain, double Ws, double Wp,
                                   int Taps, const std::string &Name) {
  auto P = std::make_unique<Pipeline>(Name);
  P->add(makeLowPassFilter(1.0, Wp, Taps));
  P->add(makeHighPassFilter(Gain, Ws, Taps));
  return P;
}

StreamPtr apps::makeBandStopFilter(double Gain, double Wp, double Ws,
                                   int Taps, const std::string &Name) {
  auto SJ = std::make_unique<SplitJoin>(Name + ".split",
                                        Splitter::duplicate(),
                                        Joiner::roundRobin({1, 1}));
  SJ->add(makeLowPassFilter(Gain, Wp, Taps));
  SJ->add(makeHighPassFilter(Gain, Ws, Taps));
  auto P = std::make_unique<Pipeline>(Name);
  P->add(std::move(SJ));
  P->add(makeAdder(2));
  return P;
}

std::unique_ptr<Filter> apps::makeCompressor(int M) {
  StmtList Body;
  Body.push_back(push(pop()));
  if (M > 1)
    Body.push_back(loop("i", cst(0), cst(M - 1), stmts(popStmt())));
  WorkFunction W(M, M, 1, std::move(Body));
  return std::make_unique<Filter>("Compressor", std::vector<FieldDef>{},
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makeExpander(int L) {
  StmtList Body;
  Body.push_back(push(pop()));
  if (L > 1)
    Body.push_back(loop("i", cst(0), cst(L - 1), stmts(push(cst(0)))));
  WorkFunction W(1, 1, L, std::move(Body));
  return std::make_unique<Filter>("Expander", std::vector<FieldDef>{},
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makeAdder(int N) {
  WorkFunction W(N, N, 1,
                 stmts(assign("sum", cst(0)),
                       loop("i", cst(0), cst(N),
                            stmts(assign("sum", add(vr("sum"), pop())))),
                       push(vr("sum"))));
  return std::make_unique<Filter>("Adder", std::vector<FieldDef>{},
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makeFloatDiff() {
  WorkFunction W(2, 2, 1,
                 stmts(push(sub(peek(0), peek(1))), popStmt(), popStmt()));
  return std::make_unique<Filter>("FloatDiff", std::vector<FieldDef>{},
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makeFloatDup() {
  WorkFunction W(1, 1, 2,
                 stmts(assign("v", pop()), push(vr("v")), push(vr("v"))));
  return std::make_unique<Filter>("FloatDup", std::vector<FieldDef>{},
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makeIdentityFilter(const std::string &Name) {
  WorkFunction W(1, 1, 1, stmts(push(pop())));
  return std::make_unique<Filter>(Name, std::vector<FieldDef>{},
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makeDelay(double Init) {
  std::vector<FieldDef> Fields = {FieldDef::mutableScalar("state", Init)};
  WorkFunction W(1, 1, 1, stmts(push(fld("state")), fldAssign("state", pop())));
  return std::make_unique<Filter>("Delay", std::move(Fields), std::move(W));
}

std::unique_ptr<Filter> apps::makeRampSource(int Period) {
  std::vector<double> Ramp(static_cast<size_t>(Period));
  for (int I = 0; I != Period; ++I)
    Ramp[static_cast<size_t>(I)] = I;
  std::vector<FieldDef> Fields = {
      FieldDef::constArray("inputs", std::move(Ramp)),
      FieldDef::mutableScalar("idx", 0)};
  // The cursor update is integer arithmetic in the original program.
  WorkFunction W(0, 0, 1,
                 stmts(push(fldAt("inputs", fld("idx"))),
                       uncounted(stmts(fldAssign(
                           "idx", mod(add(fld("idx"), cst(1)),
                                      cst(Period)))))));
  return std::make_unique<Filter>("FloatSource", std::move(Fields),
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makeCountingSource() {
  std::vector<FieldDef> Fields = {FieldDef::mutableScalar("x", 0)};
  WorkFunction W(0, 0, 1,
                 stmts(push(fld("x")), fldAssign("x", add(fld("x"), cst(1)))));
  return std::make_unique<Filter>("FloatOneSource", std::move(Fields),
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makeCosineSource(double Omega) {
  std::vector<FieldDef> Fields = {FieldDef::mutableScalar("n", 0)};
  WorkFunction W(0, 0, 1,
                 stmts(push(cosE(mul(cst(Omega), fld("n")))),
                       uncounted(stmts(
                           fldAssign("n", add(fld("n"), cst(1)))))));
  return std::make_unique<Filter>("SampledSource", std::move(Fields),
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makeMultiToneSource(int Period) {
  std::vector<double> Data(static_cast<size_t>(Period));
  for (int I = 0; I != Period; ++I) {
    double T = I;
    Data[static_cast<size_t>(I)] =
        std::sin(2 * Pi * T / Period) +
        std::sin(2 * Pi * 1.7 * T / Period + Pi / 3) +
        std::sin(2 * Pi * 2.1 * T / Period + Pi / 5);
  }
  std::vector<FieldDef> Fields = {
      FieldDef::constArray("data", std::move(Data)),
      FieldDef::mutableScalar("index", 0)};
  WorkFunction W(0, 0, 1,
                 stmts(push(fldAt("data", fld("index"))),
                       uncounted(stmts(fldAssign(
                           "index", mod(add(fld("index"), cst(1)),
                                        cst(Period)))))));
  return std::make_unique<Filter>("DataSource", std::move(Fields),
                                  std::move(W));
}

std::unique_ptr<Filter> apps::makePrinterSink() {
  WorkFunction W(1, 1, 0, stmts(printStmt(pop())));
  return std::make_unique<Filter>("FloatPrinter", std::vector<FieldDef>{},
                                  std::move(W));
}
