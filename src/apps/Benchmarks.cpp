//===- apps/Benchmarks.cpp - The nine benchmark programs ----------------------==//

#include "apps/Benchmarks.h"

#include "apps/Dsp.h"
#include "wir/Build.h"

#include <cmath>

using namespace slin;
using namespace slin::apps;
using namespace slin::wir;
using namespace slin::wir::build;

namespace {

constexpr double Pi = 3.14159265358979323846;

std::unique_ptr<Filter> makeTableSource(std::vector<double> Data,
                                        const std::string &Name) {
  int Period = static_cast<int>(Data.size());
  std::vector<FieldDef> Fields = {
      FieldDef::constArray("data", std::move(Data)),
      FieldDef::mutableScalar("pos", 0)};
  WorkFunction W(0, 0, 1,
                 stmts(push(fldAt("data", fld("pos"))),
                       uncounted(stmts(fldAssign(
                           "pos", mod(add(fld("pos"), cst(1)),
                                      cst(Period)))))));
  return std::make_unique<Filter>(Name, std::move(Fields), std::move(W));
}

/// ThresholdDetector(number, threshold) of Figure A-7.
std::unique_ptr<Filter> makeThresholdDetector(double Number,
                                              double Threshold) {
  WorkFunction W(1, 1, 1,
                 stmts(assign("t", pop()),
                       ifStmt(gt(vr("t"), cst(Threshold)),
                              stmts(push(cst(Number))),
                              stmts(push(cst(0))))));
  return std::make_unique<Filter>("ThresholdDetector",
                                  std::vector<FieldDef>{}, std::move(W));
}

} // namespace

//===----------------------------------------------------------------------===//
// FIR / RateConvert
//===----------------------------------------------------------------------===//

StreamPtr apps::buildFIR(int Taps) {
  auto P = std::make_unique<Pipeline>("FIRProgram");
  P->add(makeRampSource());
  P->add(makeLowPassFilter(1.0, Pi / 3.0, Taps));
  P->add(makePrinterSink());
  return P;
}

StreamPtr apps::buildRateConvert(int Taps) {
  auto P = std::make_unique<Pipeline>("SamplingRateConverter");
  P->add(makeCosineSource(Pi / 10.0));
  auto Inner = std::make_unique<Pipeline>("ConvertPipeline");
  Inner->add(makeExpander(2));
  Inner->add(makeLowPassFilter(3.0, Pi / 3.0, Taps));
  Inner->add(makeCompressor(3));
  P->add(std::move(Inner));
  P->add(makePrinterSink());
  return P;
}

//===----------------------------------------------------------------------===//
// TargetDetect
//===----------------------------------------------------------------------===//

namespace {

std::vector<double> matchedFilterCoeffs(int Kind, int N) {
  std::vector<double> H(static_cast<size_t>(N));
  for (int I = 0; I != N; ++I) {
    double Pos = I;
    double V = 0;
    switch (Kind) {
    case 0: // triangle minus mean
      V = (I < N / 2 ? Pos * 2.0 / N : 2.0 - Pos * 2.0 / N) - 0.5;
      break;
    case 1: // half sine with offset
      V = (1.0 / (2.0 * Pi)) * std::sin(Pi * Pos / N) - 1.0;
      break;
    case 2: // full sine
      V = (1.0 / (2.0 * Pi)) * std::sin(2.0 * Pi * Pos / N);
      break;
    case 3: // time-reversed ramp
      H[static_cast<size_t>(N - 1 - I)] = 0.5 * (Pos / N - 0.5);
      continue;
    }
    H[static_cast<size_t>(I)] = V;
  }
  return H;
}

} // namespace

StreamPtr apps::buildTargetDetect(int Taps) {
  auto P = std::make_unique<Pipeline>("TargetDetect");

  // TargetSource (Figure A-7): zeros, a width-N triangle, zeros, with
  // period 10N.
  std::vector<double> Wave(static_cast<size_t>(10 * Taps), 0.0);
  for (int I = 0; I != Taps; ++I) {
    double T = I;
    Wave[static_cast<size_t>(Taps + I)] =
        I < Taps / 2 ? T * 2.0 / Taps : 2.0 - T * 2.0 / Taps;
  }
  P->add(makeTableSource(std::move(Wave), "TargetSource"));

  auto SJ = std::make_unique<SplitJoin>("TargetDetectSplitJoin",
                                        Splitter::duplicate(),
                                        Joiner::roundRobin({1, 1, 1, 1}));
  for (int K = 0; K != 4; ++K) {
    auto Branch = std::make_unique<Pipeline>("Match" + std::to_string(K));
    Branch->add(makeFIRFilter(matchedFilterCoeffs(K, Taps),
                              "MatchedFilter" + std::to_string(K)));
    Branch->add(makeThresholdDetector(K + 1, 8.0));
    SJ->add(std::move(Branch));
  }
  P->add(std::move(SJ));
  P->add(makePrinterSink());
  return P;
}

//===----------------------------------------------------------------------===//
// FMRadio
//===----------------------------------------------------------------------===//

namespace {

/// FMDemodulator (Figure A-10): push(gain * atan(peek(0) * peek(1))).
std::unique_ptr<Filter> makeFMDemodulator(double Gain) {
  WorkFunction W(2, 1, 1,
                 stmts(push(mul(cst(Gain), atanE(mul(peek(0), peek(1))))),
                       popStmt()));
  return std::make_unique<Filter>("FMDemodulator", std::vector<FieldDef>{},
                                  std::move(W));
}

} // namespace

StreamPtr apps::buildFMRadio(int Taps, int Bands) {
  double SamplingRate = 200000.0;
  double CutoffFreq = 54000.0;
  double MaxAmplitude = 27000.0;
  double Bandwidth = 10000.0;
  double Low = 55.0, High = 1760.0;

  auto P = std::make_unique<Pipeline>("FMRadio");
  P->add(makeCountingSource());
  P->add(makeLowPassFilter(1.0, 2.0 * Pi * CutoffFreq / SamplingRate, Taps,
                           /*Decimation=*/4, /*Hamming=*/true));
  P->add(makeFMDemodulator(MaxAmplitude * (SamplingRate / (Bandwidth * Pi))));

  // Equalizer: band-split, pairwise difference, sum.
  auto Eq = std::make_unique<Pipeline>("Equalizer");
  auto SJ = std::make_unique<SplitJoin>(
      "EqualizerSplitJoin", Splitter::duplicate(),
      Joiner::roundRobin({1, 2 * (Bands - 1), 1}));
  auto BandFreq = [&](int I) {
    return std::exp(I * (std::log(High) - std::log(Low)) / Bands +
                    std::log(Low));
  };
  SJ->add(makeLowPassFilter(1.0, 2.0 * Pi * High / SamplingRate, Taps, 0,
                            true));
  auto Inner = std::make_unique<SplitJoin>(
      "EqualizerInnerSplitJoin", Splitter::duplicate(),
      Joiner::roundRobin(std::vector<int>(static_cast<size_t>(Bands - 1), 2)));
  for (int I = 0; I != Bands - 1; ++I) {
    auto Band = std::make_unique<Pipeline>("EqBand" + std::to_string(I));
    Band->add(makeLowPassFilter(1.0, 2.0 * Pi * BandFreq(I + 1) / SamplingRate,
                                Taps, 0, true));
    Band->add(makeFloatDup());
    Inner->add(std::move(Band));
  }
  SJ->add(std::move(Inner));
  SJ->add(makeLowPassFilter(1.0, 2.0 * Pi * Low / SamplingRate, Taps, 0,
                            true));
  Eq->add(std::move(SJ));
  Eq->add(makeFloatDiff());
  Eq->add(makeAdder(Bands));
  P->add(std::move(Eq));
  P->add(makePrinterSink());
  return P;
}

//===----------------------------------------------------------------------===//
// Radar
//===----------------------------------------------------------------------===//

namespace {

/// InputGenerate(channel): pushes a complex sample (cos, sin) per firing.
std::unique_ptr<Filter> makeInputGenerate(int Channel) {
  double Omega = 0.013 * (Channel + 1);
  std::vector<FieldDef> Fields = {FieldDef::mutableScalar("t", 0)};
  WorkFunction W(0, 0, 2,
                 stmts(assign("theta", mul(cst(Omega), fld("t"))),
                       push(cosE(vr("theta"))), push(sinE(vr("theta"))),
                       uncounted(stmts(
                           fldAssign("t", add(fld("t"), cst(1)))))));
  return std::make_unique<Filter>("InputGenerate", std::move(Fields),
                                  std::move(W));
}

/// Complex FIR over interleaved (re, im) pairs with decimation:
/// peek 2*Taps, pop 2*Dec, push 2.
std::unique_ptr<Filter> makeComplexFir(int Taps, int Dec,
                                       const std::string &Name,
                                       unsigned Seed) {
  std::vector<double> HR(static_cast<size_t>(Taps)),
      HI(static_cast<size_t>(Taps));
  for (int I = 0; I != Taps; ++I) {
    HR[static_cast<size_t>(I)] =
        std::cos(0.17 * (I + 1) * (Seed + 1)) / (1.0 + 0.1 * I);
    HI[static_cast<size_t>(I)] =
        std::sin(0.23 * (I + 1) * (Seed + 2)) / (1.0 + 0.1 * I);
  }
  std::vector<FieldDef> Fields = {
      FieldDef::constArray("hr", std::move(HR)),
      FieldDef::constArray("hi", std::move(HI))};
  StmtList Body;
  Body.push_back(assign("re", cst(0)));
  Body.push_back(assign("im", cst(0)));
  Body.push_back(loop(
      "i", cst(0), cst(Taps),
      stmts(assign("xr", peek(mul(cst(2), vr("i")))),
            assign("xi", peek(add(mul(cst(2), vr("i")), cst(1)))),
            assign("re", add(vr("re"),
                             sub(mul(fldAt("hr", vr("i")), vr("xr")),
                                 mul(fldAt("hi", vr("i")), vr("xi"))))),
            assign("im", add(vr("im"),
                             add(mul(fldAt("hr", vr("i")), vr("xi")),
                                 mul(fldAt("hi", vr("i")), vr("xr"))))))));
  Body.push_back(push(vr("re")));
  Body.push_back(push(vr("im")));
  Body.push_back(loop("i", cst(0), cst(2 * Dec), stmts(popStmt())));
  WorkFunction W(std::max(2 * Taps, 2 * Dec), 2 * Dec, 2, std::move(Body));
  return std::make_unique<Filter>(Name, std::move(Fields), std::move(W));
}

/// BeamForm(beam): complex dot product across all channels — pops
/// 2*Channels, pushes 2 (the problematic u << o node of Section 5.2).
std::unique_ptr<Filter> makeBeamForm(int Beam, int Channels) {
  std::vector<double> WR(static_cast<size_t>(Channels)),
      WI(static_cast<size_t>(Channels));
  for (int C = 0; C != Channels; ++C) {
    WR[static_cast<size_t>(C)] = std::cos(0.3 * (Beam + 1) * (C + 1));
    WI[static_cast<size_t>(C)] = std::sin(0.19 * (Beam + 1) * (C + 1));
  }
  std::vector<FieldDef> Fields = {
      FieldDef::constArray("wr", std::move(WR)),
      FieldDef::constArray("wi", std::move(WI))};
  StmtList Body;
  Body.push_back(assign("re", cst(0)));
  Body.push_back(assign("im", cst(0)));
  Body.push_back(loop(
      "c", cst(0), cst(Channels),
      stmts(assign("xr", peek(mul(cst(2), vr("c")))),
            assign("xi", peek(add(mul(cst(2), vr("c")), cst(1)))),
            assign("re", add(vr("re"),
                             sub(mul(fldAt("wr", vr("c")), vr("xr")),
                                 mul(fldAt("wi", vr("c")), vr("xi"))))),
            assign("im", add(vr("im"),
                             add(mul(fldAt("wr", vr("c")), vr("xi")),
                                 mul(fldAt("wi", vr("c")), vr("xr"))))))));
  Body.push_back(push(vr("re")));
  Body.push_back(push(vr("im")));
  Body.push_back(loop("i", cst(0), cst(2 * Channels), stmts(popStmt())));
  WorkFunction W(2 * Channels, 2 * Channels, 2, std::move(Body));
  return std::make_unique<Filter>("BeamForm", std::move(Fields),
                                  std::move(W));
}

/// Magnitude: sqrt(re^2 + im^2) over complex pairs (nonlinear).
std::unique_ptr<Filter> makeMagnitude() {
  WorkFunction W(2, 2, 1,
                 stmts(assign("re", pop()), assign("im", pop()),
                       push(sqrtE(add(mul(vr("re"), vr("re")),
                                      mul(vr("im"), vr("im")))))));
  return std::make_unique<Filter>("Magnitude", std::vector<FieldDef>{},
                                  std::move(W));
}

} // namespace

StreamPtr apps::buildRadar() { return buildRadar(RadarParams()); }

StreamPtr apps::buildRadar(const RadarParams &Params) {
  auto P = std::make_unique<Pipeline>("Radar");

  // Input channels: a "null" roundrobin splitter over source pipelines.
  auto Channels = std::make_unique<SplitJoin>(
      "Channels",
      Splitter::roundRobin(
          std::vector<int>(static_cast<size_t>(Params.Channels), 0)),
      Joiner::roundRobin(
          std::vector<int>(static_cast<size_t>(Params.Channels), 2)));
  for (int C = 0; C != Params.Channels; ++C) {
    auto Chan = std::make_unique<Pipeline>("Channel" + std::to_string(C));
    Chan->add(makeInputGenerate(C));
    Chan->add(makeComplexFir(Params.CoarseTaps, Params.CoarseDecimation,
                             "CoarseBeamFirFilter",
                             static_cast<unsigned>(C)));
    Chan->add(makeComplexFir(Params.FineTaps, Params.FineDecimation,
                             "FineBeamFirFilter",
                             static_cast<unsigned>(C + 100)));
    Channels->add(std::move(Chan));
  }
  P->add(std::move(Channels));

  auto Beams = std::make_unique<SplitJoin>(
      "Beams", Splitter::duplicate(),
      Joiner::roundRobin(
          std::vector<int>(static_cast<size_t>(Params.Beams), 1)));
  for (int B = 0; B != Params.Beams; ++B) {
    auto Beam = std::make_unique<Pipeline>("Beam" + std::to_string(B));
    Beam->add(makeBeamForm(B, Params.Channels));
    Beam->add(makeComplexFir(Params.MatchedTaps, 1, "MatchedBeamFirFilter",
                             static_cast<unsigned>(B + 200)));
    Beam->add(makeMagnitude());
    Beam->add(makeThresholdDetector(B + 1, 1.0));
    Beams->add(std::move(Beam));
  }
  P->add(std::move(Beams));
  P->add(makePrinterSink());
  return P;
}

//===----------------------------------------------------------------------===//
// FilterBank
//===----------------------------------------------------------------------===//

StreamPtr apps::buildFilterBank(int Bands, int Taps) {
  auto P = std::make_unique<Pipeline>("FilterBank");
  P->add(makeMultiToneSource());

  auto SJ = std::make_unique<SplitJoin>(
      "FilterBankSplitJoin", Splitter::duplicate(),
      Joiner::roundRobin(std::vector<int>(static_cast<size_t>(Bands), 1)));
  for (int I = 0; I != Bands; ++I) {
    auto Branch = std::make_unique<Pipeline>("Processing" + std::to_string(I));
    double Lo = I * Pi / Bands;
    double Hi = (I + 1) * Pi / Bands;
    Branch->add(makeBandPassFilter(1.0, Lo, Hi, Taps,
                                   "BandPass" + std::to_string(I)));
    Branch->add(makeCompressor(Bands));
    Branch->add(makeIdentityFilter("ProcessFilter"));
    Branch->add(makeExpander(Bands));
    Branch->add(makeBandStopFilter(static_cast<double>(Bands), Lo, Hi, Taps,
                                   "BandStop" + std::to_string(I)));
    SJ->add(std::move(Branch));
  }
  P->add(std::move(SJ));
  P->add(makeAdder(Bands));
  P->add(makePrinterSink());
  return P;
}

//===----------------------------------------------------------------------===//
// Vocoder
//===----------------------------------------------------------------------===//

namespace {

/// CenterClip (Figure A-14): clamp to [-0.75, 0.75] (nonlinear).
std::unique_ptr<Filter> makeCenterClip() {
  WorkFunction W(
      1, 1, 1,
      stmts(assign("t", pop()),
            ifStmt(lt(vr("t"), cst(-0.75)), stmts(push(cst(-0.75))),
                   stmts(ifStmt(gt(vr("t"), cst(0.75)),
                                stmts(push(cst(0.75))),
                                stmts(push(vr("t"))))))));
  return std::make_unique<Filter>("CenterClip", std::vector<FieldDef>{},
                                  std::move(W));
}

/// CorrPeak (Figure A-14): auto-correlation peak detector with threshold
/// (quadratic in the input: nonlinear).
std::unique_ptr<Filter> makeCorrPeak(int WinSize, int Decimation) {
  StmtList Body;
  Body.push_back(localArray("autocorr", WinSize));
  Body.push_back(loop(
      "i", cst(0), cst(WinSize),
      stmts(assign("sum", cst(0)),
            loop("j", vr("i"), cst(WinSize),
                 stmts(assign("sum", add(vr("sum"),
                                         mul(peek(vr("i")),
                                             peek(vr("j"))))))),
            arrAssign("autocorr", vr("i"),
                      div(vr("sum"), cst(WinSize))))));
  Body.push_back(assign("maxpeak", cst(0)));
  Body.push_back(loop(
      "i", cst(0), cst(WinSize),
      stmts(ifStmt(gt(arrAt("autocorr", vr("i")), vr("maxpeak")),
                   stmts(assign("maxpeak", arrAt("autocorr", vr("i"))))))));
  Body.push_back(ifStmt(gt(vr("maxpeak"), cst(0.07)),
                        stmts(push(vr("maxpeak"))), stmts(push(cst(0)))));
  Body.push_back(loop("i", cst(0), cst(Decimation), stmts(popStmt())));
  WorkFunction W(WinSize, Decimation, 1, std::move(Body));
  return std::make_unique<Filter>("CorrPeak", std::vector<FieldDef>{},
                                  std::move(W));
}

} // namespace

StreamPtr apps::buildVocoder(int PitchWindow, int Decimation, int BandTaps) {
  auto P = std::make_unique<Pipeline>("ChannelVocoder");
  P->add(makeTableSource(
      {-0.70867825, 0.9750938, -0.009129746, 0.28532153, -0.42127264,
       -0.95795095, 0.68976873, 0.99901736, -0.8581795, 0.9863592, 0.909825},
      "DataSource"));
  P->add(makeLowPassFilter(1.0, 0.9 * Pi, BandTaps));

  auto Main = std::make_unique<SplitJoin>("MainSplitjoin",
                                          Splitter::duplicate(),
                                          Joiner::roundRobin({1, 4}));
  auto Pitch = std::make_unique<Pipeline>("PitchDetector");
  Pitch->add(makeCenterClip());
  Pitch->add(makeCorrPeak(PitchWindow, Decimation));
  Main->add(std::move(Pitch));

  auto Bank = std::make_unique<SplitJoin>(
      "VocoderFilterBank", Splitter::duplicate(),
      Joiner::roundRobin({1, 1, 1, 1}));
  for (int I = 0; I != 4; ++I) {
    auto Chan = std::make_unique<Pipeline>("FilterDecimate" + std::to_string(I));
    double Lo = (I + 0.25) * Pi / 5.0;
    double Hi = (I + 1) * Pi / 5.0;
    Chan->add(makeBandPassFilter(2.0, Lo, Hi, BandTaps,
                                 "VocoderBandPass" + std::to_string(I)));
    Chan->add(makeCompressor(Decimation));
    Bank->add(std::move(Chan));
  }
  Main->add(std::move(Bank));
  P->add(std::move(Main));
  P->add(makePrinterSink());
  return P;
}

//===----------------------------------------------------------------------===//
// Oversampler / DToA
//===----------------------------------------------------------------------===//

namespace {

StreamPtr makeOverSampler(int Stages, int Taps) {
  auto P = std::make_unique<Pipeline>("OverSampler");
  for (int I = 0; I != Stages; ++I) {
    P->add(makeExpander(2));
    P->add(makeLowPassFilter(2.0, Pi / 2.0, Taps));
  }
  return P;
}

/// QuantizerAndError: pushes the 1-bit quantization and its error.
std::unique_ptr<Filter> makeQuantizerAndError() {
  WorkFunction W(
      1, 1, 2,
      stmts(assign("in", pop()),
            ifStmt(lt(vr("in"), cst(0)), stmts(assign("out", cst(-1))),
                   stmts(assign("out", cst(1)))),
            push(vr("out")), push(sub(vr("out"), vr("in")))));
  return std::make_unique<Filter>("QuantizerAndError",
                                  std::vector<FieldDef>{}, std::move(W));
}

/// AdderFilter: push(pop() + pop()).
std::unique_ptr<Filter> makeAdderFilter() {
  WorkFunction W(2, 2, 1, stmts(push(add(pop(), pop()))));
  return std::make_unique<Filter>("AdderFilter", std::vector<FieldDef>{},
                                  std::move(W));
}

} // namespace

StreamPtr apps::buildOversampler(int Stages, int Taps) {
  auto P = std::make_unique<Pipeline>("Oversampler");
  P->add(makeMultiToneSource());
  P->add(makeOverSampler(Stages, Taps));
  P->add(makePrinterSink());
  return P;
}

StreamPtr apps::buildDToA(int Taps, int OversampleTaps) {
  auto P = std::make_unique<Pipeline>("OneBitDToA");
  P->add(makeMultiToneSource());
  P->add(makeOverSampler(4, OversampleTaps));

  // NoiseShaper (Figure A-16): first-order noise shaping feedback loop.
  auto Body = std::make_unique<Pipeline>("NoiseShaperBody");
  Body->add(makeAdderFilter());
  Body->add(makeQuantizerAndError());
  P->add(std::make_unique<FeedbackLoop>(
      "NoiseShaper", Joiner::roundRobin({1, 1}), std::move(Body),
      makeDelay(0.0), Splitter::roundRobin({1, 1}),
      std::vector<double>{0.0}));

  P->add(makeLowPassFilter(1.0, Pi / 100.0, Taps));
  P->add(makePrinterSink());
  return P;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

const std::vector<BenchmarkEntry> &apps::allBenchmarks() {
  static const std::vector<BenchmarkEntry> Entries = {
      {"FIR", [] { return buildFIR(); }},
      {"RateConvert", [] { return buildRateConvert(); }},
      {"TargetDetect", [] { return buildTargetDetect(); }},
      {"FMRadio", [] { return buildFMRadio(); }},
      {"Radar", [] { return buildRadar(); }},
      {"FilterBank", [] { return buildFilterBank(); }},
      {"Vocoder", [] { return buildVocoder(); }},
      {"Oversampler", [] { return buildOversampler(); }},
      {"DToA", [] { return buildDToA(); }},
  };
  return Entries;
}
