//===- apps/Dsp.h - Shared DSP filter library -------------------*- C++ -*-===//
///
/// \file
/// The common StreamIt components of Appendix A, built as work-IR filters:
/// sources and sinks, windowed-sinc low/high-pass FIR filters, band
/// pass/stop compositions, expanders, compressors, adders and utility
/// filters. The nine benchmark programs (Benchmarks.h) are assembled from
/// these, exactly as the appendix assembles them.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_APPS_DSP_H
#define SLIN_APPS_DSP_H

#include "graph/Stream.h"

#include <string>
#include <vector>

namespace slin {
namespace apps {

//===----------------------------------------------------------------------===//
// Coefficient designers (the benchmarks' init-function math)
//===----------------------------------------------------------------------===//

/// Windowed-sinc low-pass design of Figure A-2 (gain \p G, cutoff
/// \p CutoffRad in radians, \p Taps taps), optionally Hamming-windowed
/// (the FMRadio variant of Figure A-10).
std::vector<double> lowPassCoeffs(double G, double CutoffRad, int Taps,
                                  bool Hamming = false);

/// Spectral-inverse high-pass design with the same window.
std::vector<double> highPassCoeffs(double G, double CutoffRad, int Taps);

//===----------------------------------------------------------------------===//
// Filters
//===----------------------------------------------------------------------===//

/// FIR filter in the convolution-sum form of Figure 1-3:
/// peek Taps, pop 1 + \p Decimation, push 1.
std::unique_ptr<Filter> makeFIRFilter(std::vector<double> H,
                                      const std::string &Name,
                                      int Decimation = 0);

/// LowPassFilter(g, cutoffFreq, N) of Figure A-2 (+ FMRadio decimation).
std::unique_ptr<Filter> makeLowPassFilter(double G, double CutoffRad,
                                          int Taps, int Decimation = 0,
                                          bool Hamming = false);

/// HighPassFilter counterpart (used by BandPass/BandStop).
std::unique_ptr<Filter> makeHighPassFilter(double G, double CutoffRad,
                                           int Taps);

/// BandPassFilter (Figure A-11): low-pass cascaded with high-pass.
StreamPtr makeBandPassFilter(double Gain, double Ws, double Wp, int Taps,
                             const std::string &Name);

/// BandStopFilter (Figure A-12): duplicate splitjoin of low/high pass,
/// summed by an Adder.
StreamPtr makeBandStopFilter(double Gain, double Wp, double Ws, int Taps,
                             const std::string &Name);

/// Compressor(M) (Figure A-4): keeps the first of every M items.
std::unique_ptr<Filter> makeCompressor(int M);

/// Expander(L) (Figure A-5): each input followed by L-1 zeros.
std::unique_ptr<Filter> makeExpander(int L);

/// Pops N items and pushes their sum (FloatNAdder / FilterBank Adder).
std::unique_ptr<Filter> makeAdder(int N);

/// push(peek(0) - peek(1)) over pairs (FMRadio FloatDiff).
std::unique_ptr<Filter> makeFloatDiff();

/// Duplicates each input item (FMRadio FloatDup).
std::unique_ptr<Filter> makeFloatDup();

/// Identity filter (Vocoder ProcessFilter).
std::unique_ptr<Filter> makeIdentityFilter(const std::string &Name);

/// Delay by one item with initial value \p Init (DToA).
std::unique_ptr<Filter> makeDelay(double Init = 0.0);

//===----------------------------------------------------------------------===//
// Sources and sinks
//===----------------------------------------------------------------------===//

/// FloatSource of Figure A-3: a repeating ramp of \p Period values
/// (stateful, hence nonlinear).
std::unique_ptr<Filter> makeRampSource(int Period = 16);

/// push(x++) (FMRadio FloatOneSource).
std::unique_ptr<Filter> makeCountingSource();

/// SampledSource(w): push(cos(w*n)) (RateConvert, Figure A-6).
std::unique_ptr<Filter> makeCosineSource(double W);

/// Sum-of-three-sinusoids source (FilterBank / Oversampler / DToA),
/// realized as a period-Period lookup of precomputed samples with a
/// mutable cursor.
std::unique_ptr<Filter> makeMultiToneSource(int Period = 100);

/// FloatPrinter: prints (to the program sink) and discards one item.
std::unique_ptr<Filter> makePrinterSink();

} // namespace apps
} // namespace slin

#endif // SLIN_APPS_DSP_H
