//===- support/StatsRegistry.cpp - Unified counter snapshot interface -----===//
///
/// \file
/// The provider registry and snapshot/JSON rendering behind
/// support/StatsRegistry.h.
///
//===----------------------------------------------------------------------===//

#include "support/StatsRegistry.h"

#include <algorithm>

using namespace slin;

StatsRegistry &StatsRegistry::global() {
  // Deliberately leaked: Registration dtors in other translation units
  // run at exit in an order the registry must survive.
  static StatsRegistry *R = new StatsRegistry();
  return *R;
}

int StatsRegistry::addProvider(std::string Prefix, Provider Fn) {
  std::lock_guard<std::mutex> Lock(Mutex);
  int Id = NextId++;
  Providers.push_back({Id, std::move(Prefix), std::move(Fn)});
  return Id;
}

void StatsRegistry::removeProvider(int Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (size_t I = 0; I != Providers.size(); ++I) {
    if (Providers[I].Id != Id)
      continue;
    Providers.erase(Providers.begin() + static_cast<ptrdiff_t>(I));
    return;
  }
}

StatsRegistry::Counters StatsRegistry::snapshot() const {
  // Copy the provider list, then run the closures unlocked: a provider
  // is free to take subsystem locks (cache mutexes) that its owner may
  // hold while registering.
  std::vector<Entry> Copy;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Copy = Providers;
  }
  Counters Out;
  for (const Entry &E : Copy) {
    Counters Local;
    E.Fn(Local);
    for (auto &KV : Local)
      Out.emplace_back(E.Prefix + "." + KV.first, KV.second);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string StatsRegistry::json(const Counters &C) {
  std::string Out = "{";
  for (size_t I = 0; I != C.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\"" + C[I].first + "\":" + std::to_string(C[I].second);
  }
  Out += "}";
  return Out;
}
