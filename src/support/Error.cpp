//===- support/Error.cpp - Recoverable status and Expected -------------------==//

#include "support/Error.h"

#include "support/Diag.h"

using namespace slin;

const char *slin::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::NoSpace:
    return "no-space";
  case ErrorCode::Corrupt:
    return "corrupt";
  case ErrorCode::Unserializable:
    return "unserializable";
  case ErrorCode::VerifyFailed:
    return "verify-failed";
  case ErrorCode::RateError:
    return "rate-error";
  case ErrorCode::Deadlock:
    return "deadlock";
  case ErrorCode::Timeout:
    return "timeout";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::ShardAnomaly:
    return "shard-anomaly";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::Internal:
    return "internal";
  }
  unreachable("unknown error code");
}
