//===- support/RuntimeConfig.cpp - Typed SLIN_* runtime configuration -----===//
///
/// \file
/// Environment parsing and the refreshable process snapshot behind
/// support/RuntimeConfig.h.
///
//===----------------------------------------------------------------------===//

#include "support/RuntimeConfig.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace slin;

namespace {

std::string envString(const char *Name) {
  const char *V = std::getenv(Name);
  return V ? V : "";
}

/// Flag knobs count any non-empty value as set (the historical
/// behaviour of every `getenv(...) != nullptr` site — "0" disables only
/// where the old parse said so, which was SLIN_VERIFY alone).
bool envFlag(const char *Name) {
  const char *V = std::getenv(Name);
  return V && *V;
}

struct GlobalConfig {
  std::mutex Mutex;
  bool Parsed = false;
  RuntimeConfig Config;
};

GlobalConfig &globalConfig() {
  static GlobalConfig G;
  return G;
}

} // namespace

RuntimeConfig RuntimeConfig::fromEnv() {
  RuntimeConfig C;
  C.ArtifactDir = envString("SLIN_ARTIFACT_DIR");
  // Historically any set value (even empty) disabled the caches; keep
  // exactly that so SLIN_NO_CACHE= behaves as before.
  C.NoCache = std::getenv("SLIN_NO_CACHE") != nullptr;
  if (const char *V = std::getenv("SLIN_STORE_MAX_BYTES"))
    C.StoreMaxBytes = std::strtoull(V, nullptr, 10);
  if (const char *V = std::getenv("SLIN_STORE_TTL_S"))
    C.StoreTtlSeconds = std::strtoll(V, nullptr, 10);
  if (const char *V = std::getenv("SLIN_VERIFY"))
    C.Verify = *V && std::strcmp(V, "0") != 0;
  C.Cxx = envString("SLIN_CXX");
  C.NoNative = envFlag("SLIN_NO_NATIVE");
  if (const char *V = std::getenv("SLIN_RUN_DEADLINE_MS"))
    if (*V)
      C.RunDeadlineMillis = std::strtoll(V, nullptr, 10);
  C.FaultSpec = envString("SLIN_FAULT");
  C.BenchDir = envString("SLIN_BENCH_DIR");
  return C;
}

RuntimeConfig RuntimeConfig::current() {
  GlobalConfig &G = globalConfig();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  if (!G.Parsed) {
    G.Parsed = true;
    G.Config = fromEnv();
  }
  return G.Config;
}

void RuntimeConfig::refreshFromEnv() {
  RuntimeConfig Fresh = fromEnv();
  GlobalConfig &G = globalConfig();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  G.Parsed = true;
  G.Config = std::move(Fresh);
}

void RuntimeConfig::set(const RuntimeConfig &C) {
  GlobalConfig &G = globalConfig();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  G.Parsed = true;
  G.Config = C;
}

RuntimeConfig RuntimeConfig::withOverrides(const Overrides &O) const {
  RuntimeConfig C = *this;
  if (O.RunDeadlineMillis)
    C.RunDeadlineMillis = *O.RunDeadlineMillis;
  if (O.NoCache)
    C.NoCache = *O.NoCache;
  if (O.NoNative)
    C.NoNative = *O.NoNative;
  if (O.Verify)
    C.Verify = *O.Verify;
  return C;
}
