//===- support/OpCounters.h - Floating-point op accounting -----*- C++ -*-===//
///
/// \file
/// The paper measures its optimizations in floating-point operation counts
/// gathered by a DynamoRIO instruction-counting client over IA-32 binaries
/// (Section 5.1, Table 5.1). Our substitute is this accounting layer: every
/// floating-point operation *executed* by the stream runtime — whether by
/// the work-IR interpreter, a generated linear filter, the FFT library or a
/// matrix kernel — flows through the counted helpers below.
///
/// Mirroring the paper's taxonomy:
///  * "FLOPS" are all floating-point arithmetic (Table 5.1's checked rows):
///    adds, subtracts, multiplies, divides, compares and transcendentals.
///  * "multiplication instructions" are the fmul/fdiv families, i.e. our
///    Muls + Divs.
///
/// Counting is a thread-local toggle so timing runs can disable it; the
/// helpers compile to a single predictable branch when disabled.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SUPPORT_OPCOUNTERS_H
#define SLIN_SUPPORT_OPCOUNTERS_H

#include <cmath>
#include <cstdint>

/// Compile-time kill switch for the accounting layer (cmake
/// -DSLIN_COUNT_OPS=OFF). When 0, the counted helpers below compile to
/// raw arithmetic, isCounting() is constant-false, and the batched
/// kernels / op-tape dispatch loops drop their counted paths entirely.
/// The default build keeps accounting available; timing runs still avoid
/// its cost at runtime because every hot loop selects an ops-free fast
/// path whenever isCounting() is false (see wir/OpTape.cpp and
/// matrix/Kernels.cpp).
#ifndef SLIN_COUNT_OPS
#define SLIN_COUNT_OPS 1
#endif

namespace slin {

/// A snapshot of executed floating-point operation counts.
struct OpCounts {
  uint64_t Adds = 0;
  uint64_t Subs = 0;
  uint64_t Muls = 0;
  uint64_t Divs = 0;
  uint64_t Cmps = 0;
  uint64_t Trans = 0; ///< sin/cos/atan/sqrt/exp/log/abs/...

  /// All floating point operations (the paper's "FLOPS").
  uint64_t flops() const { return Adds + Subs + Muls + Divs + Cmps + Trans; }

  /// The paper's "multiplication instructions" (fmul/fdiv families).
  uint64_t mults() const { return Muls + Divs; }

  OpCounts operator-(const OpCounts &O) const {
    OpCounts R;
    R.Adds = Adds - O.Adds;
    R.Subs = Subs - O.Subs;
    R.Muls = Muls - O.Muls;
    R.Divs = Divs - O.Divs;
    R.Cmps = Cmps - O.Cmps;
    R.Trans = Trans - O.Trans;
    return R;
  }

  OpCounts &operator+=(const OpCounts &O) {
    Adds += O.Adds;
    Subs += O.Subs;
    Muls += O.Muls;
    Divs += O.Divs;
    Cmps += O.Cmps;
    Trans += O.Trans;
    return *this;
  }

  bool operator==(const OpCounts &O) const {
    return Adds == O.Adds && Subs == O.Subs && Muls == O.Muls &&
           Divs == O.Divs && Cmps == O.Cmps && Trans == O.Trans;
  }
  bool operator!=(const OpCounts &O) const { return !(*this == O); }
};

namespace ops {

namespace detail {
extern thread_local bool Enabled;
extern thread_local OpCounts Counts;
} // namespace detail

inline bool isCounting() {
#if SLIN_COUNT_OPS
  return detail::Enabled;
#else
  return false;
#endif
}
inline const OpCounts &counts() { return detail::Counts; }

/// RAII scope that enables counting and restores the previous state.
class CountingScope {
public:
  explicit CountingScope(bool Enable = true) : Saved(detail::Enabled) {
    detail::Enabled = Enable;
  }
  ~CountingScope() { detail::Enabled = Saved; }
  CountingScope(const CountingScope &) = delete;
  CountingScope &operator=(const CountingScope &) = delete;

private:
  bool Saved;
};

/// Resets all counters to zero.
void reset();

/// Folds \p Delta into the calling thread's counters. The parallel
/// execution layer uses this to aggregate worker-thread op counts (the
/// counters are thread_local, so ops executed on a worker would otherwise
/// be invisible to the measuring thread).
inline void accumulate(const OpCounts &Delta) {
#if SLIN_COUNT_OPS
  detail::Counts += Delta;
#else
  (void)Delta;
#endif
}

inline double add(double A, double B) {
  if (SLIN_COUNT_OPS && detail::Enabled)
    ++detail::Counts.Adds;
  return A + B;
}
inline double sub(double A, double B) {
  if (SLIN_COUNT_OPS && detail::Enabled)
    ++detail::Counts.Subs;
  return A - B;
}
inline double mul(double A, double B) {
  if (SLIN_COUNT_OPS && detail::Enabled)
    ++detail::Counts.Muls;
  return A * B;
}
inline double div(double A, double B) {
  if (SLIN_COUNT_OPS && detail::Enabled)
    ++detail::Counts.Divs;
  return A / B;
}
/// Floating remainder (the FPREM family; counted with the divides).
inline double mod(double A, double B) {
  if (SLIN_COUNT_OPS && detail::Enabled)
    ++detail::Counts.Divs;
  return std::fmod(A, B);
}
inline bool cmp(bool Result) {
  if (SLIN_COUNT_OPS && detail::Enabled)
    ++detail::Counts.Cmps;
  return Result;
}
/// Counts one transcendental evaluation and returns \p Result.
inline double trans(double Result) {
  if (SLIN_COUNT_OPS && detail::Enabled)
    ++detail::Counts.Trans;
  return Result;
}

/// Fused helper for the ubiquitous multiply-accumulate.
inline double fma(double Acc, double A, double B) {
  if (SLIN_COUNT_OPS && detail::Enabled) {
    ++detail::Counts.Muls;
    ++detail::Counts.Adds;
  }
  return Acc + A * B;
}

} // namespace ops
} // namespace slin

#endif // SLIN_SUPPORT_OPCOUNTERS_H
