//===- support/Hashing.h - Order-sensitive 128-bit hashing ------*- C++ -*-===//
///
/// \file
/// A small accumulating hasher used for structural hashing of stream
/// graphs (compiler/StructuralHash.h) and for the content keys of the
/// analysis and program caches. Two independently-mixed 64-bit lanes give
/// a 128-bit digest, making accidental collisions between distinct
/// structures negligible even across millions of cache entries — the
/// caches treat digest equality as structural equality.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SUPPORT_HASHING_H
#define SLIN_SUPPORT_HASHING_H

#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>

namespace slin {

/// A 128-bit hash value; totally ordered so it can key std::map.
struct HashDigest {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const HashDigest &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const HashDigest &O) const { return !(*this == O); }
  bool operator<(const HashDigest &O) const {
    return std::tie(Lo, Hi) < std::tie(O.Lo, O.Hi);
  }

  std::string str() const {
    static const char *Hex = "0123456789abcdef";
    std::string S(32, '0');
    for (int I = 0; I != 16; ++I) {
      S[static_cast<size_t>(15 - I)] = Hex[(Lo >> (4 * I)) & 0xF];
      S[static_cast<size_t>(31 - I)] = Hex[(Hi >> (4 * I)) & 0xF];
    }
    return S;
  }
};

/// Order-sensitive accumulator: feed values in a canonical traversal
/// order; equal digests mean equal feed sequences.
class HashStream {
public:
  void mix(uint64_t V) {
    // splitmix64-style finalization per lane, with distinct multipliers
    // so the lanes stay independent.
    A = stir(A ^ (V + 0x9e3779b97f4a7c15ULL), 0xbf58476d1ce4e5b9ULL);
    B = stir(B + (V ^ 0x94d049bb133111ebULL), 0xff51afd7ed558ccdULL);
    ++Count;
  }
  void mixInt(int64_t V) { mix(static_cast<uint64_t>(V)); }
  void mixDouble(double D) {
    uint64_t Bits;
    std::memcpy(&Bits, &D, sizeof(Bits));
    mix(Bits);
  }
  void mixString(const std::string &S) {
    mix(S.size());
    uint64_t Word = 0;
    int Shift = 0;
    for (unsigned char C : S) {
      Word |= static_cast<uint64_t>(C) << Shift;
      Shift += 8;
      if (Shift == 64) {
        mix(Word);
        Word = 0;
        Shift = 0;
      }
    }
    if (Shift)
      mix(Word);
  }

  HashDigest digest() const {
    // Final avalanche, folding the element count in so prefixes differ.
    return {stir(A ^ Count, 0xc2b2ae3d27d4eb4fULL),
            stir(B + Count, 0x9e3779b97f4a7c15ULL)};
  }

private:
  static uint64_t stir(uint64_t X, uint64_t Mult) {
    X ^= X >> 30;
    X *= Mult;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebULL;
    X ^= X >> 31;
    return X;
  }

  uint64_t A = 0x6a09e667f3bcc908ULL;
  uint64_t B = 0xbb67ae8584caa73bULL;
  uint64_t Count = 0;
};

} // namespace slin

#endif // SLIN_SUPPORT_HASHING_H
