//===- support/OpCounters.cpp ---------------------------------------------==//

#include "support/OpCounters.h"

namespace slin {
namespace ops {
namespace detail {
thread_local bool Enabled = false;
thread_local OpCounts Counts;
} // namespace detail

void reset() { detail::Counts = OpCounts(); }

} // namespace ops
} // namespace slin
