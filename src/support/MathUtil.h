//===- support/MathUtil.h - Integer math helpers ---------------*- C++ -*-===//
///
/// \file
/// gcd/lcm helpers and small rational arithmetic used by the steady-state
/// scheduler (Section 3.3.1) and the combination transformations
/// (Transformations 2 and 3), which are phrased in terms of lcm's of
/// filter I/O rates.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SUPPORT_MATHUTIL_H
#define SLIN_SUPPORT_MATHUTIL_H

#include "support/Diag.h"

#include <cassert>
#include <cstdint>
#include <numeric>

namespace slin {

inline int64_t gcd64(int64_t A, int64_t B) { return std::gcd(A, B); }

inline int64_t lcm64(int64_t A, int64_t B) {
  assert(A > 0 && B > 0 && "lcm of non-positive rates");
  return A / std::gcd(A, B) * B;
}

/// ceil(A / B) for positive operands.
inline int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0 && "division by non-positive value");
  return (A + B - 1) / B;
}

/// Saturating int64 arithmetic for the aggregate-rate solver
/// (computeRates): repetition counts of extreme candidate rewrites
/// priced by the selection DP compound multiplicatively through nested
/// roundrobin interfaces and can exceed int64. Any graph that saturates
/// here is far past every combination size guard, so clamping at
/// INT64_MAX where wrapping would be UB never changes a viable
/// configuration.
inline int64_t mulSat64(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return INT64_MAX;
  return R;
}

inline int64_t addSat64(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return INT64_MAX;
  return R;
}

/// An exact non-negative rational, used to solve SDF balance equations.
/// Always kept in lowest terms with a positive denominator.
class Rational {
public:
  Rational() = default;
  Rational(int64_t Num, int64_t Den = 1) : Num(Num), Den(Den) { normalize(); }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  Rational operator*(const Rational &O) const {
    return Rational(Num * O.Num, Den * O.Den);
  }
  Rational operator/(const Rational &O) const {
    if (O.Num == 0)
      fatalError("rational division by zero while solving balance equations");
    return Rational(Num * O.Den, Den * O.Num);
  }
  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }

private:
  void normalize() {
    if (Den == 0)
      fatalError("rational with zero denominator");
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
  }

  int64_t Num = 0;
  int64_t Den = 1;
};

} // namespace slin

#endif // SLIN_SUPPORT_MATHUTIL_H
