//===- support/RuntimeConfig.h - Typed SLIN_* runtime configuration -*- C++ -*-===//
///
/// \file
/// One typed front door for every `SLIN_*` environment knob. The knobs
/// themselves are unchanged (same names, same accepted values — see the
/// README table); what changed is *where* they are read. Before this
/// header the runtime had ~15 scattered `getenv("SLIN_*")` call sites,
/// each with its own parse and its own caching policy; a long-lived
/// service can't reason about that, and per-request overrides were
/// impossible. Now:
///
///  * `RuntimeConfig::fromEnv()` parses the environment **now** — the
///    live view. The two callers that must observe a variable per call
///    (`SLIN_FAULT` resolution, `RunDeadline::fromEnv`) use this.
///  * `RuntimeConfig::current()` returns the process snapshot, parsed
///    once on first use. Everything else reads this.
///  * `RuntimeConfig::refreshFromEnv()` re-parses the snapshot — the
///    hook tests use after `setenv`, and the daemon uses on reload.
///  * `RuntimeConfig::Overrides` + `withOverrides` layer per-request
///    settings (a client's deadline, cache opt-out, native opt-out)
///    over the snapshot without touching process state.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SUPPORT_RUNTIMECONFIG_H
#define SLIN_SUPPORT_RUNTIMECONFIG_H

#include <cstdint>
#include <optional>
#include <string>

namespace slin {

struct RuntimeConfig {
  /// SLIN_ARTIFACT_DIR: persistent artifact store directory ("" = no
  /// store). Read when the global store first resolves; later refreshes
  /// do not re-point an already-resolved store (use
  /// `ArtifactStore::setGlobalDir`).
  std::string ArtifactDir;

  /// SLIN_NO_CACHE: kill-switch for the analysis/program/disk caches.
  bool NoCache = false;

  /// SLIN_STORE_MAX_BYTES: artifact-store byte budget (0 = unbounded).
  uint64_t StoreMaxBytes = 0;

  /// SLIN_STORE_TTL_S: artifact expiry age in seconds (0 = never).
  int64_t StoreTtlSeconds = 0;

  /// SLIN_VERIFY: run the verifier passes after every rewrite.
  bool Verify = false;

  /// SLIN_CXX: compiler for emitted native code, used verbatim ("" =
  /// probe c++/g++/clang++ on PATH).
  std::string Cxx;

  /// SLIN_NO_NATIVE: disable the native codegen engine outright.
  bool NoNative = false;

  /// SLIN_RUN_DEADLINE_MS: wall-clock deadline for every try* executor
  /// run (0 = none).
  int64_t RunDeadlineMillis = 0;

  /// SLIN_FAULT: deterministic fault-injection arming spec.
  std::string FaultSpec;

  /// SLIN_BENCH_DIR: fixed output directory for BENCH_*.json ("" = CWD).
  std::string BenchDir;

  /// Parses the SLIN_* environment right now (no caching).
  static RuntimeConfig fromEnv();

  /// The process snapshot: parsed from the environment once, on first
  /// use. Returns a copy — cheap (slow-path callers only) and immune to
  /// a concurrent refresh.
  static RuntimeConfig current();

  /// Re-parses the snapshot from the environment. Tests call this after
  /// `setenv`/`unsetenv`; the daemon calls it on config reload.
  static void refreshFromEnv();

  /// Replaces the snapshot wholesale (daemon command-line flags).
  static void set(const RuntimeConfig &C);

  /// Per-request settings layered over a base config: only the fields a
  /// service client may steer. Unset fields inherit the base.
  struct Overrides {
    std::optional<int64_t> RunDeadlineMillis;
    std::optional<bool> NoCache;
    std::optional<bool> NoNative;
    std::optional<bool> Verify;
  };

  /// This config with \p O's set fields applied.
  RuntimeConfig withOverrides(const Overrides &O) const;
};

} // namespace slin

#endif // SLIN_SUPPORT_RUNTIMECONFIG_H
