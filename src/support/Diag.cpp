//===- support/Diag.cpp ---------------------------------------------------==//

#include "support/Diag.h"

#include <cstdio>
#include <cstdlib>

using namespace slin;

void slin::fatalError(const std::string &Message) {
  std::fprintf(stderr, "slin fatal error: %s\n", Message.c_str());
  std::fflush(stderr);
  std::abort();
}

void slin::unreachable(const char *Message) {
  std::fprintf(stderr, "slin unreachable: %s\n", Message);
  std::fflush(stderr);
  std::abort();
}
