//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
///
/// \file
/// Named fault points for deterministic failure-path testing. Each point
/// marks one place where the environment can fail (a short write, a
/// failed rename, ENOSPC, a tripped verifier, corrupted shard seeds, a
/// wedged run); arming a point makes exactly the chosen hit fail, so a
/// recovery path replays identically run after run.
///
/// Arming, from the environment:
///
///     SLIN_FAULT=<point>:<nth>[+][,<point>:<nth>[+]...]
///
/// fails the Nth hit (1-based) of the point once — a bounded retry then
/// succeeds — or, with the `+` suffix, the Nth and every later hit, so
/// retries exhaust and the caller's terminal degradation runs. Tests can
/// also arm programmatically (faults::arm / faults::reset), which takes
/// precedence over the environment.
///
/// Cost when unarmed: one relaxed atomic load of a process-global flag
/// (shouldFail inlines to that test-and-skip). Every fault point sits on
/// a slow path — file publish, pass verification, shard seeding — never
/// inside a kernel or dispatch loop, so the unarmed overhead on steady-
/// state throughput is unmeasurable by design.
///
/// The second half is the run-deadline/cancellation token (RunDeadline):
/// the try* executor entry points poll it between firing programs so an
/// injected hang (or a genuinely runaway run) returns ErrorCode::Timeout
/// / Cancelled instead of wedging its worker thread.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SUPPORT_FAULTINJECTION_H
#define SLIN_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace slin {
namespace faults {

/// Every injectable failure site. Names (pointName) are the SLIN_FAULT
/// spelling; keep the two lists in sync.
enum class Point : int {
  ArtifactWriteShort, ///< artifact-write-short: publish write truncates
  ArtifactRenameFail, ///< artifact-rename-fail: publish rename fails
  StoreEnospc,        ///< store-enospc: publish write reports ENOSPC
  PassVerifierTrip,   ///< pass-verifier-trip: rate verifier reports failure
  ShardSeedCorrupt,   ///< shard-seed-corrupt: shard-boundary seeding anomaly
  ExecHang,           ///< exec-hang: run loop stalls until its deadline
  CodegenCcFail,      ///< codegen-cc-fail: native-code compiler invocation fails
  CodegenDlopenFail,  ///< codegen-dlopen-fail: loading the built .so fails
  LintVerifierTrip,   ///< lint-verifier-trip: abstract-interp linter failure
  NumPoints
};

const char *pointName(Point P);

/// True when this hit of \p P must fail. Unarmed processes pay one
/// relaxed atomic load; armed points count hits atomically, so
/// concurrent hitters (parallel shards) still fire exactly once for a
/// one-shot arm.
bool shouldFail(Point P);

/// Arms \p P to fail on its \p NthHit-th hit (1-based); \p Persistent
/// keeps it failing from that hit on (the "retries must exhaust" mode).
/// Resets the point's hit counter.
void arm(Point P, uint64_t NthHit, bool Persistent = false);

/// Disarms every point and clears hit counters (does NOT re-read
/// SLIN_FAULT; tests own the configuration after a reset).
void reset();

/// Hits observed on \p P since its last arm/reset. Counted only while
/// some point is armed (the unarmed fast path skips all bookkeeping);
/// useful for asserting an armed fault point was actually reached.
uint64_t hitCount(Point P);

/// Parses and applies $SLIN_FAULT. Called once automatically before the
/// first shouldFail; malformed specs are ignored point-wise.
void armFromEnv();

//===----------------------------------------------------------------------===//
// Run deadline / cancellation token
//===----------------------------------------------------------------------===//

/// A deadline plus an optional external cancel flag, polled by the try*
/// run loops (exec/CompiledExecutor.h, exec/Parallel.h) at firing-
/// program granularity — cheap (a clock read per steady batch) and
/// responsive (a batch is microseconds). Default-constructed: unlimited.
class RunDeadline {
public:
  RunDeadline() = default;

  /// Expires \p Millis from now (<= 0: no deadline).
  static RunDeadline afterMillis(int64_t Millis);

  /// SLIN_RUN_DEADLINE_MS from the environment (unset/empty/0: no
  /// deadline). Read per call, not cached: a serving process arms it
  /// per request.
  static RunDeadline fromEnv();

  /// Attaches an external cancellation flag; expired() reports
  /// Cancelled once it is set.
  void setCancelFlag(const std::atomic<bool> *Flag) { Cancel = Flag; }

  bool hasDeadline() const { return Limited; }
  bool cancelled() const {
    return Cancel && Cancel->load(std::memory_order_relaxed);
  }
  bool timedOut() const {
    return Limited && std::chrono::steady_clock::now() >= Deadline;
  }
  /// Either termination cause.
  bool expired() const { return cancelled() || timedOut(); }

  std::chrono::steady_clock::time_point deadline() const { return Deadline; }

private:
  bool Limited = false;
  std::chrono::steady_clock::time_point Deadline{};
  const std::atomic<bool> *Cancel = nullptr;
};

} // namespace faults
} // namespace slin

#endif // SLIN_SUPPORT_FAULTINJECTION_H
