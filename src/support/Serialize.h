//===- support/Serialize.h - Endian-stable binary serialization -*- C++ -*-===//
///
/// \file
/// A minimal byte-oriented serialization layer for persistent compiler
/// artifacts (compiler/ArtifactStore.h). Everything is written in
/// fixed-width little-endian regardless of host byte order, so an
/// artifact written on one machine loads on any other.
///
/// The Reader is designed for *untrusted* input: every read is bounds-
/// checked, element counts are validated against the remaining bytes
/// before any allocation, and the first malformed read latches a failure
/// flag instead of crashing — callers check ok() once at the end and
/// treat failure as a cache miss (recompile), never an error.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SUPPORT_SERIALIZE_H
#define SLIN_SUPPORT_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace slin {

struct HashDigest;

namespace serial {

/// Content digest of a raw byte span (the artifact payload checksum:
/// catches any bit flip the per-section parsers would accept).
HashDigest hashBytes(const uint8_t *Data, size_t Size);

/// Append-only byte sink; all multi-byte values little-endian.
class Writer {
public:
  void u8(uint8_t V) { Bytes.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void boolean(bool V) { u8(V ? 1 : 0); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }
  void f64s(const std::vector<double> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (double D : V)
      f64(D);
  }
  void i64s(const std::vector<int64_t> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (int64_t D : V)
      i64(D);
  }
  void i32s(const std::vector<int32_t> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (int32_t D : V)
      i32(D);
  }
  void ints(const std::vector<int> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (int D : V)
      i32(D);
  }
  void strs(const std::vector<std::string> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (const std::string &S : V)
      str(S);
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  size_t size() const { return Bytes.size(); }

private:
  std::vector<uint8_t> Bytes;
};

/// Bounds-checked cursor over a byte span. Reads past the end (or with
/// absurd element counts) latch fail(); subsequent reads return zeros.
class Reader {
public:
  Reader(const uint8_t *Data, size_t Size) : P(Data), N(Size) {}
  explicit Reader(const std::vector<uint8_t> &Bytes)
      : Reader(Bytes.data(), Bytes.size()) {}
  /// The reader borrows the bytes; a temporary would dangle.
  explicit Reader(std::vector<uint8_t> &&) = delete;

  bool ok() const { return !Failed; }
  /// True when every byte was consumed (trailing garbage is a failure
  /// mode its own — a truncated-then-padded file must not load).
  bool atEnd() const { return Pos == N; }
  size_t remaining() const { return N - Pos; }
  void fail() { Failed = true; }

  uint8_t u8() {
    if (!take(1))
      return 0;
    return P[Pos - 1];
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(P[Pos - 4 + I]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(P[Pos - 8 + I]) << (8 * I);
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  bool boolean() {
    uint8_t V = u8();
    if (V > 1)
      fail();
    return V == 1;
  }
  std::string str() {
    uint32_t Len = u32();
    if (!take(Len))
      return std::string();
    return std::string(reinterpret_cast<const char *>(P + Pos - Len), Len);
  }
  std::vector<double> f64s() { return readVec<double, 8>([this] { return f64(); }); }
  std::vector<int64_t> i64s() { return readVec<int64_t, 8>([this] { return i64(); }); }
  std::vector<int32_t> i32s() { return readVec<int32_t, 4>([this] { return i32(); }); }
  std::vector<int> ints() { return readVec<int, 4>([this] { return i32(); }); }
  std::vector<std::string> strs() {
    uint32_t Count = u32();
    std::vector<std::string> V;
    if (Failed || Count > remaining()) { // each string needs >= 4 bytes; cheap cap
      if (Count)
        fail();
      return V;
    }
    V.reserve(Count);
    for (uint32_t I = 0; I != Count && !Failed; ++I)
      V.push_back(str());
    return V;
  }

private:
  bool take(size_t K) {
    if (Failed || K > N - Pos) {
      Failed = true;
      return false;
    }
    Pos += K;
    return true;
  }

  template <class T, size_t ElemBytes, class Fn> std::vector<T> readVec(Fn Read) {
    uint32_t Count = u32();
    std::vector<T> V;
    if (Failed || static_cast<uint64_t>(Count) * ElemBytes > remaining()) {
      if (Count)
        fail();
      return V;
    }
    V.reserve(Count);
    for (uint32_t I = 0; I != Count; ++I)
      V.push_back(Read());
    return V;
  }

  const uint8_t *P;
  size_t N;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace serial
} // namespace slin

#endif // SLIN_SUPPORT_SERIALIZE_H
