//===- support/Serialize.cpp - Endian-stable binary serialization ------------==//

#include "support/Serialize.h"

#include "support/Hashing.h"

using namespace slin;

HashDigest slin::serial::hashBytes(const uint8_t *Data, size_t Size) {
  HashStream H;
  H.mix(0xb17e5); // domain tag
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t Word = 0;
    for (int B = 0; B != 8; ++B)
      Word |= static_cast<uint64_t>(Data[I + B]) << (8 * B);
    H.mix(Word);
  }
  if (I != Size) {
    uint64_t Word = 0;
    for (int B = 0; I + B != Size; ++B)
      Word |= static_cast<uint64_t>(Data[I + B]) << (8 * B);
    H.mix(Word);
  }
  H.mix(Size);
  return H.digest();
}
