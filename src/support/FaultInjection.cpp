//===- support/FaultInjection.cpp - Deterministic fault injection ------------==//

#include "support/FaultInjection.h"

#include "support/RuntimeConfig.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

using namespace slin;
using namespace slin::faults;

namespace {

constexpr int NumPoints = static_cast<int>(Point::NumPoints);

/// Per-point arming state. Counters are atomic so parallel shards can
/// hit a point concurrently; the one-shot decision is made with a
/// fetch_add, so exactly one hitter observes the armed ordinal.
struct PointState {
  std::atomic<bool> Armed{false};
  std::atomic<uint64_t> NthHit{0}; ///< 1-based ordinal that fails
  std::atomic<bool> Persistent{false};
  std::atomic<uint64_t> Hits{0};
};

PointState &state(Point P) {
  static PointState States[NumPoints];
  return States[static_cast<int>(P)];
}

/// One process-global "anything armed" flag: the whole cost of an
/// unarmed fault point is a relaxed load of this.
std::atomic<bool> &anyArmed() {
  static std::atomic<bool> Any{false};
  return Any;
}

std::once_flag &envOnce() {
  static std::once_flag Once;
  return Once;
}

Point pointByName(const std::string &Name, bool &Ok) {
  Ok = true;
  for (int I = 0; I != NumPoints; ++I)
    if (Name == pointName(static_cast<Point>(I)))
      return static_cast<Point>(I);
  Ok = false;
  return Point::NumPoints;
}

} // namespace

const char *slin::faults::pointName(Point P) {
  switch (P) {
  case Point::ArtifactWriteShort:
    return "artifact-write-short";
  case Point::ArtifactRenameFail:
    return "artifact-rename-fail";
  case Point::StoreEnospc:
    return "store-enospc";
  case Point::PassVerifierTrip:
    return "pass-verifier-trip";
  case Point::ShardSeedCorrupt:
    return "shard-seed-corrupt";
  case Point::ExecHang:
    return "exec-hang";
  case Point::CodegenCcFail:
    return "codegen-cc-fail";
  case Point::CodegenDlopenFail:
    return "codegen-dlopen-fail";
  case Point::LintVerifierTrip:
    return "lint-verifier-trip";
  case Point::NumPoints:
    break;
  }
  return "<invalid>";
}

void slin::faults::arm(Point P, uint64_t NthHit, bool Persistent) {
  PointState &S = state(P);
  S.Hits.store(0, std::memory_order_relaxed);
  S.NthHit.store(NthHit, std::memory_order_relaxed);
  S.Persistent.store(Persistent, std::memory_order_relaxed);
  S.Armed.store(NthHit != 0, std::memory_order_relaxed);
  if (NthHit != 0)
    anyArmed().store(true, std::memory_order_release);
}

void slin::faults::reset() {
  // Mark the environment consumed: a reset() must stick even when
  // SLIN_FAULT is still set (tests own the configuration afterwards).
  std::call_once(envOnce(), [] {});
  for (int I = 0; I != NumPoints; ++I) {
    PointState &S = state(static_cast<Point>(I));
    S.Armed.store(false, std::memory_order_relaxed);
    S.NthHit.store(0, std::memory_order_relaxed);
    S.Persistent.store(false, std::memory_order_relaxed);
    S.Hits.store(0, std::memory_order_relaxed);
  }
  anyArmed().store(false, std::memory_order_release);
}

uint64_t slin::faults::hitCount(Point P) {
  return state(P).Hits.load(std::memory_order_relaxed);
}

void slin::faults::armFromEnv() {
  std::call_once(envOnce(), [] {
    // A live parse (not the process snapshot): fault arming must see
    // the SLIN_FAULT a test exported just before the first hit.
    std::string S = RuntimeConfig::fromEnv().FaultSpec;
    if (S.empty())
      return;
    size_t Pos = 0;
    while (Pos < S.size()) {
      size_t Comma = S.find(',', Pos);
      std::string Item =
          S.substr(Pos, Comma == std::string::npos ? Comma : Comma - Pos);
      Pos = Comma == std::string::npos ? S.size() : Comma + 1;
      size_t Colon = Item.find(':');
      std::string Name = Item.substr(0, Colon);
      uint64_t Nth = 1;
      bool Persistent = false;
      if (Colon != std::string::npos) {
        std::string N = Item.substr(Colon + 1);
        if (!N.empty() && N.back() == '+') {
          Persistent = true;
          N.pop_back();
        }
        char *End = nullptr;
        unsigned long long V = std::strtoull(N.c_str(), &End, 10);
        if (!End || *End != '\0' || V == 0)
          continue; // malformed ordinal: skip this item
        Nth = V;
      }
      bool Ok = false;
      Point P = pointByName(Name, Ok);
      if (Ok)
        arm(P, Nth, Persistent);
    }
  });
}

bool slin::faults::shouldFail(Point P) {
  if (!anyArmed().load(std::memory_order_acquire)) {
    // First call resolves SLIN_FAULT; with the variable unset this
    // branch stays the whole unarmed cost after the one-time parse.
    armFromEnv();
    if (!anyArmed().load(std::memory_order_acquire))
      return false;
  }
  PointState &S = state(P);
  uint64_t Hit = S.Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!S.Armed.load(std::memory_order_relaxed))
    return false;
  uint64_t Nth = S.NthHit.load(std::memory_order_relaxed);
  if (S.Persistent.load(std::memory_order_relaxed))
    return Hit >= Nth;
  return Hit == Nth;
}

//===----------------------------------------------------------------------===//
// RunDeadline
//===----------------------------------------------------------------------===//

RunDeadline slin::faults::RunDeadline::afterMillis(int64_t Millis) {
  RunDeadline D;
  if (Millis > 0) {
    D.Limited = true;
    D.Deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(Millis);
  }
  return D;
}

RunDeadline slin::faults::RunDeadline::fromEnv() {
  // Deliberately a live per-call parse: a deadline exported mid-process
  // (or cleared) must apply to the next run, with no refresh step.
  return afterMillis(RuntimeConfig::fromEnv().RunDeadlineMillis);
}
