//===- support/Error.h - Recoverable status and Expected --------*- C++ -*-===//
///
/// \file
/// The recoverable-error layer. Historically every failure in this
/// library went through support/Diag.h's fatalError — print and abort —
/// which is the right policy for programmer errors (malformed graphs
/// built by hand, violated invariants) but the wrong one for a serving
/// process: disk full, a corrupt artifact, a tripped verifier or an
/// exhausted input stream must degrade, not die. Status and Expected<T>
/// carry those failures to a caller that can choose a fallback:
///
///   * `Status`: an error code plus a human-readable context chain
///     ("load artifact: read header: short read"). The empty (Ok)
///     status is cheap to pass around and test.
///   * `Expected<T>`: a T or the Status explaining its absence.
///
/// Policy (see README "Error handling"): the `try*` entry points —
/// CompilerPipeline::tryCompile, ArtifactStore::tryStore/tryLoad,
/// CompiledExecutor::tryRun*, ParallelExecutor::tryRun* — return
/// Status/Expected and never abort on environmental failure; the
/// original non-try forms keep their fatal contract (they wrap the try
/// forms). fatalError itself remains for invariants only.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SUPPORT_ERROR_H
#define SLIN_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace slin {

/// Coarse classification of a recoverable failure; the message string
/// carries the specifics. Codes exist so degradation policies can
/// branch (e.g. retry NoSpace after eviction, recompile in Base mode on
/// VerifyFailed) without parsing text.
enum class ErrorCode {
  Ok = 0,
  IoError,        ///< open/read/write/rename/fsync failure
  NoSpace,        ///< ENOSPC (retryable after eviction)
  Corrupt,        ///< malformed or checksum-failing persisted bytes
  Unserializable, ///< program holds a native filter without a serialTag
  VerifyFailed,   ///< rate/schedule verifier mismatch after a pass
  RateError,      ///< no valid steady state (balance equations)
  Deadlock,       ///< execution cannot make progress (input shortfall)
  Timeout,        ///< run deadline expired
  Cancelled,      ///< cancellation token fired
  ShardAnomaly,   ///< parallel shard seeding failed validation
  Overloaded,     ///< service admission refused: queue depth exceeded
  Internal,       ///< none of the above; message has the story
};

const char *errorCodeName(ErrorCode C);

/// An error code plus a context chain, or Ok. Modeled after
/// absl::Status, sized for a codebase that mostly succeeds: the Ok
/// status is two words and no allocation.
class Status {
public:
  Status() = default;
  Status(ErrorCode C, std::string Message)
      : Code(C), Msg(std::move(Message)) {
    assert(C != ErrorCode::Ok && "Ok status carries no message");
  }

  static Status ok() { return Status(); }

  bool isOk() const { return Code == ErrorCode::Ok; }
  explicit operator bool() const { return isOk(); }

  ErrorCode code() const { return Code; }
  const std::string &message() const { return Msg; }

  /// Prepends a caller-side frame to the context chain:
  /// Status(IoError, "short read").withContext("load artifact")
  /// renders as "load artifact: short read".
  Status withContext(const std::string &Frame) const {
    if (isOk())
      return *this;
    return Status(Code, Frame + ": " + Msg);
  }

  /// "io-error: load artifact: short read" (empty string when Ok).
  std::string str() const {
    if (isOk())
      return std::string();
    return std::string(errorCodeName(Code)) + ": " + Msg;
  }

private:
  ErrorCode Code = ErrorCode::Ok;
  std::string Msg;
};

/// A value or the Status explaining its absence. The minimal subset of
/// llvm::Expected this codebase needs; no exceptions, no heap jump.
template <class T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Expected(Status St) : St(std::move(St)) {
    assert(!this->St.isOk() && "error Expected needs a non-Ok status");
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &operator*() {
    assert(hasValue());
    return *Value;
  }
  const T &operator*() const {
    assert(hasValue());
    return *Value;
  }
  T *operator->() {
    assert(hasValue());
    return &*Value;
  }
  const T *operator->() const {
    assert(hasValue());
    return &*Value;
  }

  /// The failure; Ok when a value is present.
  const Status &status() const { return St; }

  /// Moves the value out (the usual "checked, now take it" step).
  T take() {
    assert(hasValue());
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  Status St;
};

} // namespace slin

#endif // SLIN_SUPPORT_ERROR_H
