//===- support/Diag.h - Diagnostics and fatal errors ----------*- C++ -*-===//
//
// Part of slin, a reproduction of "Linear Analysis and Optimization of
// Stream Programs" (Lamb, Thies, Amarasinghe; PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal diagnostic helpers. The library never throws; unrecoverable
/// misuse (malformed stream graphs, inconsistent rates) reports a message
/// to stderr and aborts, in the spirit of report_fatal_error.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SUPPORT_DIAG_H
#define SLIN_SUPPORT_DIAG_H

#include <string>

namespace slin {

/// Prints "slin fatal error: <message>" to stderr and aborts.
[[noreturn]] void fatalError(const std::string &Message);

/// Marks a point that must be unreachable; aborts with \p Message.
[[noreturn]] void unreachable(const char *Message);

} // namespace slin

#endif // SLIN_SUPPORT_DIAG_H
