//===- support/StatsRegistry.h - Unified counter snapshot interface -*- C++ -*-===//
///
/// \file
/// One snapshot interface over every counter the system maintains. The
/// subsystems each kept their own `Stats` struct (`ProgramCache`,
/// `ArtifactStore`, `NativeModuleCache`, `AnalysisManager`, the
/// executor pools) — fine for unit tests, useless for a service that
/// must answer "what is this process doing" in one request. Providers
/// register a prefix plus a closure that appends `(name, value)` pairs;
/// `snapshot()` runs them all and returns the merged, sorted,
/// dot-qualified counter map (`program-cache.hits`,
/// `artifact-store.evictions`, `service.requests`, ...). The daemon's
/// `stats` request and `slin-lint --stats` both consume it; `json()`
/// renders a snapshot as a flat JSON object.
///
/// Built-in subsystems self-register from their own .cpp at static
/// init (a `StatsRegistry::Registration` file-static); dynamic sources
/// (the daemon's per-graph pools) hold a `Registration` member so the
/// provider unregisters with its owner.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SUPPORT_STATSREGISTRY_H
#define SLIN_SUPPORT_STATSREGISTRY_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace slin {

class StatsRegistry {
public:
  /// A flat counter map: dot-qualified name -> value, sorted by name.
  using Counters = std::vector<std::pair<std::string, uint64_t>>;

  /// Appends this source's counters (bare names; the registry
  /// qualifies them with the registered prefix).
  using Provider = std::function<void(Counters &)>;

  /// The process-wide registry. Never destroyed: provider
  /// registrations from other translation units may outlive any exit
  /// ordering the linker picks.
  static StatsRegistry &global();

  /// Registers \p Fn under \p Prefix; returns an id for removeProvider.
  int addProvider(std::string Prefix, Provider Fn);
  void removeProvider(int Id);

  /// Runs every provider and returns the merged sorted counter map.
  Counters snapshot() const;

  /// Renders a snapshot as one flat JSON object.
  static std::string json(const Counters &C);

  /// RAII provider registration: registers on construction,
  /// unregisters on destruction.
  class Registration {
  public:
    Registration() = default;
    Registration(std::string Prefix, Provider Fn)
        : Id(global().addProvider(std::move(Prefix), std::move(Fn))) {}
    Registration(Registration &&O) noexcept : Id(O.Id) { O.Id = 0; }
    Registration &operator=(Registration &&O) noexcept {
      if (this != &O) {
        reset();
        Id = O.Id;
        O.Id = 0;
      }
      return *this;
    }
    Registration(const Registration &) = delete;
    Registration &operator=(const Registration &) = delete;
    ~Registration() { reset(); }

    void reset() {
      if (Id)
        global().removeProvider(Id);
      Id = 0;
    }

  private:
    int Id = 0;
  };

private:
  struct Entry {
    int Id;
    std::string Prefix;
    Provider Fn;
  };

  mutable std::mutex Mutex;
  std::vector<Entry> Providers;
  int NextId = 1;
};

} // namespace slin

#endif // SLIN_SUPPORT_STATSREGISTRY_H
