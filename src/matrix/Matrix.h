//===- matrix/Matrix.h - Dense matrices for linear nodes -------*- C++ -*-===//
///
/// \file
/// Dense row-major matrices and vectors over double. These back the linear
/// node representation of Definition 1 ({A, b, e, o, u}) and the
/// combination transformations of Section 3.3, which are pure matrix
/// algebra (shifted-copy expansion, matrix product, column interleaving).
///
/// Analysis-time algebra is *not* routed through the op counters: the
/// paper's combination happens at compile time, so it must not perturb
/// the runtime FLOP measurements. Runtime kernels live in Kernels.h.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_MATRIX_MATRIX_H
#define SLIN_MATRIX_MATRIX_H

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace slin {

/// A dense vector of doubles.
class Vector {
public:
  Vector() = default;
  explicit Vector(size_t N, double Fill = 0.0) : Data(N, Fill) {}
  Vector(std::initializer_list<double> Init) : Data(Init) {}

  size_t size() const { return Data.size(); }
  bool empty() const { return Data.empty(); }

  double &operator[](size_t I) {
    assert(I < Data.size() && "vector index out of range");
    return Data[I];
  }
  double operator[](size_t I) const {
    assert(I < Data.size() && "vector index out of range");
    return Data[I];
  }

  const double *data() const { return Data.data(); }
  double *data() { return Data.data(); }

  bool operator==(const Vector &O) const { return Data == O.Data; }

  /// Number of entries different from zero.
  size_t countNonZero() const;

  /// Max-norm distance to \p O; the vectors must have equal size.
  double maxAbsDiff(const Vector &O) const;

  std::string str() const;

private:
  std::vector<double> Data;
};

/// A dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  /// Builds a matrix from a row-major initializer list; all rows must have
  /// the same length.
  static Matrix fromRows(std::initializer_list<std::initializer_list<double>> Rows);

  /// The N x N identity matrix.
  static Matrix identity(size_t N);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  const double *rowData(size_t R) const {
    assert(R < NumRows && "row out of range");
    return Data.data() + R * NumCols;
  }

  /// Matrix product; requires cols() == O.rows().
  Matrix multiply(const Matrix &O) const;

  /// Row-vector * matrix product: returns V * this (V has rows() entries).
  Vector leftMultiply(const Vector &V) const;

  /// Extracts column \p C as a vector of rows() entries.
  Vector column(size_t C) const;

  /// Overwrites column \p C with \p V (must have rows() entries).
  void setColumn(size_t C, const Vector &V);

  size_t countNonZero() const;

  /// True for a square matrix whose off-diagonal entries are all zero
  /// (diagonal entries are unconstrained). The pipeline-combination fast
  /// paths use these to skip the general product when one factor is a
  /// diagonal scaling or an exact identity (expanded Identity/Gain
  /// filters produce these); results are elementwise equal to the general
  /// product up to the sign of zero entries.
  bool isDiagonal() const;
  /// True for a square diagonal matrix whose diagonal is exactly 1.0.
  bool isIdentity() const;

  bool operator==(const Matrix &O) const {
    return NumRows == O.NumRows && NumCols == O.NumCols && Data == O.Data;
  }

  /// Max-norm distance to \p O; dimensions must match.
  double maxAbsDiff(const Matrix &O) const;

  std::string str() const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

namespace serial {
class Writer;
class Reader;
} // namespace serial

/// Binary serialization (support/Serialize.h) for persistent artifacts.
/// Deserialization returns false on malformed input (dimension/payload
/// mismatch) without touching \p Out's invariants.
void serializeMatrix(serial::Writer &W, const Matrix &M);
bool deserializeMatrix(serial::Reader &R, Matrix &Out);
void serializeVector(serial::Writer &W, const Vector &V);
bool deserializeVector(serial::Reader &R, Vector &Out);

} // namespace slin

#endif // SLIN_MATRIX_MATRIX_H
