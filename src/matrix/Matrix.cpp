//===- matrix/Matrix.cpp --------------------------------------------------==//

#include "matrix/Matrix.h"

#include "support/Diag.h"
#include "support/Serialize.h"

#include <cmath>
#include <cstdio>

using namespace slin;

size_t Vector::countNonZero() const {
  size_t N = 0;
  for (double D : Data)
    if (D != 0.0)
      ++N;
  return N;
}

double Vector::maxAbsDiff(const Vector &O) const {
  assert(size() == O.size() && "size mismatch in maxAbsDiff");
  double Max = 0.0;
  for (size_t I = 0, E = size(); I != E; ++I)
    Max = std::max(Max, std::fabs(Data[I] - O.Data[I]));
  return Max;
}

std::string Vector::str() const {
  std::string S = "[";
  char Buf[32];
  for (size_t I = 0, E = size(); I != E; ++I) {
    std::snprintf(Buf, sizeof(Buf), "%g", Data[I]);
    if (I)
      S += ", ";
    S += Buf;
  }
  S += "]";
  return S;
}

Matrix Matrix::fromRows(
    std::initializer_list<std::initializer_list<double>> Rows) {
  Matrix M(Rows.size(), Rows.size() ? Rows.begin()->size() : 0);
  size_t R = 0;
  for (const auto &Row : Rows) {
    if (Row.size() != M.cols())
      fatalError("Matrix::fromRows: ragged initializer");
    size_t C = 0;
    for (double D : Row)
      M.at(R, C++) = D;
    ++R;
  }
  return M;
}

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I != N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

Matrix Matrix::multiply(const Matrix &O) const {
  assert(NumCols == O.NumRows && "dimension mismatch in multiply");
  Matrix R(NumRows, O.NumCols);
  for (size_t I = 0; I != NumRows; ++I) {
    for (size_t K = 0; K != NumCols; ++K) {
      double V = at(I, K);
      if (V == 0.0)
        continue;
      const double *ORow = O.rowData(K);
      for (size_t J = 0; J != O.NumCols; ++J)
        R.at(I, J) += V * ORow[J];
    }
  }
  return R;
}

Vector Matrix::leftMultiply(const Vector &V) const {
  assert(V.size() == NumRows && "dimension mismatch in leftMultiply");
  Vector R(NumCols);
  for (size_t I = 0; I != NumRows; ++I) {
    double S = V[I];
    if (S == 0.0)
      continue;
    const double *Row = rowData(I);
    for (size_t J = 0; J != NumCols; ++J)
      R[J] += S * Row[J];
  }
  return R;
}

bool Matrix::isDiagonal() const {
  if (NumRows != NumCols)
    return false;
  for (size_t R = 0; R != NumRows; ++R)
    for (size_t C = 0; C != NumCols; ++C)
      if (R != C && at(R, C) != 0.0)
        return false;
  return true;
}

bool Matrix::isIdentity() const {
  if (!isDiagonal())
    return false;
  for (size_t R = 0; R != NumRows; ++R)
    if (at(R, R) != 1.0)
      return false;
  return true;
}

Vector Matrix::column(size_t C) const {
  assert(C < NumCols && "column out of range");
  Vector V(NumRows);
  for (size_t R = 0; R != NumRows; ++R)
    V[R] = at(R, C);
  return V;
}

void Matrix::setColumn(size_t C, const Vector &V) {
  assert(C < NumCols && V.size() == NumRows && "bad setColumn");
  for (size_t R = 0; R != NumRows; ++R)
    at(R, C) = V[R];
}

size_t Matrix::countNonZero() const {
  size_t N = 0;
  for (double D : Data)
    if (D != 0.0)
      ++N;
  return N;
}

double Matrix::maxAbsDiff(const Matrix &O) const {
  assert(NumRows == O.NumRows && NumCols == O.NumCols &&
         "dimension mismatch in maxAbsDiff");
  double Max = 0.0;
  for (size_t I = 0, E = Data.size(); I != E; ++I)
    Max = std::max(Max, std::fabs(Data[I] - O.Data[I]));
  return Max;
}

std::string Matrix::str() const {
  std::string S;
  char Buf[32];
  for (size_t R = 0; R != NumRows; ++R) {
    S += R == 0 ? "[" : " ";
    for (size_t C = 0; C != NumCols; ++C) {
      std::snprintf(Buf, sizeof(Buf), "%8g", at(R, C));
      S += Buf;
      if (C + 1 != NumCols)
        S += " ";
    }
    S += R + 1 == NumRows ? "]" : "\n";
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

void slin::serializeMatrix(serial::Writer &W, const Matrix &M) {
  W.u32(static_cast<uint32_t>(M.rows()));
  W.u32(static_cast<uint32_t>(M.cols()));
  for (size_t R = 0; R != M.rows(); ++R) {
    const double *Row = M.rowData(R);
    for (size_t C = 0; C != M.cols(); ++C)
      W.f64(Row[C]);
  }
}

bool slin::deserializeMatrix(serial::Reader &R, Matrix &Out) {
  uint32_t Rows = R.u32();
  uint32_t Cols = R.u32();
  // 8 bytes per element must fit in what's left of the buffer.
  if (!R.ok() ||
      static_cast<uint64_t>(Rows) * Cols > R.remaining() / sizeof(double)) {
    R.fail();
    return false;
  }
  Matrix M(Rows, Cols);
  for (size_t I = 0; I != Rows; ++I)
    for (size_t J = 0; J != Cols; ++J)
      M.at(I, J) = R.f64();
  if (!R.ok())
    return false;
  Out = std::move(M);
  return true;
}

void slin::serializeVector(serial::Writer &W, const Vector &V) {
  W.u32(static_cast<uint32_t>(V.size()));
  for (size_t I = 0; I != V.size(); ++I)
    W.f64(V[I]);
}

bool slin::deserializeVector(serial::Reader &R, Vector &Out) {
  uint32_t N = R.u32();
  if (!R.ok() || N > R.remaining() / sizeof(double)) {
    R.fail();
    return false;
  }
  Vector V(N);
  for (size_t I = 0; I != N; ++I)
    V[I] = R.f64();
  if (!R.ok())
    return false;
  Out = std::move(V);
  return true;
}
