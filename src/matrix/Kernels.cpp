//===- matrix/Kernels.cpp -------------------------------------------------==//

#include "matrix/Kernels.h"

#include "support/OpCounters.h"

#include <cassert>

using namespace slin;

PackedLinearKernel::PackedLinearKernel(const Matrix &CNat, const Vector &B)
    : PeekRate(static_cast<int>(CNat.rows())), Dense(CNat) {
  assert(B.size() == CNat.cols() && "offset size mismatch");
  size_t E = CNat.rows(), U = CNat.cols();
  Columns.resize(U);
  for (size_t J = 0; J != U; ++J) {
    Column &Col = Columns[J];
    Col.Offset = B[J];
    size_t First = 0, Last = E; // [First, Last)
    while (First < E && CNat.at(First, J) == 0.0)
      ++First;
    while (Last > First && CNat.at(Last - 1, J) == 0.0)
      --Last;
    Col.First = static_cast<int>(First);
    Col.Coeffs.reserve(Last - First);
    for (size_t P = First; P != Last; ++P)
      Col.Coeffs.push_back(CNat.at(P, J));
  }
}

void PackedLinearKernel::applyBanded(const double *In, double *Out) const {
  for (size_t J = 0, U = Columns.size(); J != U; ++J) {
    const Column &Col = Columns[J];
    double Sum = 0.0;
    const double *Window = In + Col.First;
    for (size_t I = 0, N = Col.Coeffs.size(); I != N; ++I)
      Sum = ops::fma(Sum, Col.Coeffs[I], Window[I]);
    if (Col.Offset != 0.0)
      Sum = ops::add(Sum, Col.Offset);
    Out[J] = Sum;
  }
}

void PackedLinearKernel::applyDense(const double *In, double *Out) const {
  size_t E = Dense.rows(), U = Dense.cols();
  for (size_t J = 0; J != U; ++J) {
    double Sum = 0.0;
    for (size_t P = 0; P != E; ++P)
      Sum = ops::fma(Sum, Dense.at(P, J), In[P]);
    if (Columns[J].Offset != 0.0)
      Sum = ops::add(Sum, Columns[J].Offset);
    Out[J] = Sum;
  }
}

size_t PackedLinearKernel::bandedMultiplyCount() const {
  size_t N = 0;
  for (const Column &Col : Columns)
    N += Col.Coeffs.size();
  return N;
}

TunedGemv::TunedGemv(const Matrix &CNat, const Vector &B)
    : E(static_cast<int>(CNat.rows())), U(static_cast<int>(CNat.cols())),
      RowMajorT(CNat.rows() * CNat.cols()), Offsets(B.size()),
      Staging(CNat.rows()) {
  assert(B.size() == CNat.cols() && "offset size mismatch");
  for (int J = 0; J != U; ++J) {
    Offsets[J] = B[J];
    for (int P = 0; P != E; ++P)
      RowMajorT[static_cast<size_t>(J) * E + P] = CNat.at(P, J);
  }
}

void TunedGemv::apply(const double *In, double *Out) const {
  // Interface overhead: stage the input window, as the paper's ATLAS
  // wrapper copied the tape into a contiguous buffer.
  for (int P = 0; P != E; ++P)
    Staging[P] = In[P];

  for (int J = 0; J != U; ++J) {
    const double *Row = RowMajorT.data() + static_cast<size_t>(J) * E;
    double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
    int P = 0;
    for (; P + 4 <= E; P += 4) {
      S0 = ops::fma(S0, Row[P + 0], Staging[P + 0]);
      S1 = ops::fma(S1, Row[P + 1], Staging[P + 1]);
      S2 = ops::fma(S2, Row[P + 2], Staging[P + 2]);
      S3 = ops::fma(S3, Row[P + 3], Staging[P + 3]);
    }
    for (; P != E; ++P)
      S0 = ops::fma(S0, Row[P], Staging[P]);
    double Sum = ops::add(ops::add(S0, S1), ops::add(S2, S3));
    if (Offsets[J] != 0.0)
      Sum = ops::add(Sum, Offsets[J]);
    Out[J] = Sum;
  }
}
