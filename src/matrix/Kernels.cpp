//===- matrix/Kernels.cpp -------------------------------------------------==//

#include "matrix/Kernels.h"

#include "support/OpCounters.h"
#include "support/Serialize.h"
#include "wir/CxxEmit.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace slin;

namespace {

/// Counted/uncounted arithmetic, selected at compile time per kernel
/// instantiation. The uncounted flavours are the ops-free fast path.
template <bool Counted> inline double kfma(double Acc, double A, double B) {
  if (Counted)
    return ops::fma(Acc, A, B);
  return Acc + A * B;
}
template <bool Counted> inline double kadd(double A, double B) {
  if (Counted)
    return ops::add(A, B);
  return A + B;
}

/// Firings per cache block of the batched paths: windows of one block
/// stay resident while every output column walks them.
constexpr int BatchBlock = 32;

} // namespace

//===----------------------------------------------------------------------===//
// PackedLinearKernel
//===----------------------------------------------------------------------===//

PackedLinearKernel::PackedLinearKernel(const Matrix &CNat, const Vector &B)
    : PeekRate(static_cast<int>(CNat.rows())), Dense(CNat) {
  assert(B.size() == CNat.cols() && "offset size mismatch");
  size_t E = CNat.rows(), U = CNat.cols();
  Columns.resize(U);
  for (size_t J = 0; J != U; ++J) {
    Column &Col = Columns[J];
    Col.Offset = B[J];
    size_t First = 0, Last = E; // [First, Last)
    while (First < E && CNat.at(First, J) == 0.0)
      ++First;
    while (Last > First && CNat.at(Last - 1, J) == 0.0)
      --Last;
    Col.First = static_cast<int>(First);
    Col.Coeffs.reserve(Last - First);
    for (size_t P = First; P != Last; ++P)
      Col.Coeffs.push_back(CNat.at(P, J));
  }
}

template <bool Counted>
void PackedLinearKernel::bandedImpl(const double *In, double *Out) const {
  for (size_t J = 0, U = Columns.size(); J != U; ++J) {
    const Column &Col = Columns[J];
    double Sum = 0.0;
    const double *Window = In + Col.First;
    for (size_t I = 0, N = Col.Coeffs.size(); I != N; ++I)
      Sum = kfma<Counted>(Sum, Col.Coeffs[I], Window[I]);
    if (Col.Offset != 0.0)
      Sum = kadd<Counted>(Sum, Col.Offset);
    Out[J] = Sum;
  }
}

void PackedLinearKernel::applyBanded(const double *In, double *Out) const {
#if SLIN_COUNT_OPS
  if (ops::isCounting()) {
    bandedImpl<true>(In, Out);
    return;
  }
#endif
  bandedImpl<false>(In, Out);
}

void PackedLinearKernel::applyDense(const double *In, double *Out) const {
  size_t E = Dense.rows(), U = Dense.cols();
  for (size_t J = 0; J != U; ++J) {
    double Sum = 0.0;
    for (size_t P = 0; P != E; ++P)
      Sum = ops::fma(Sum, Dense.at(P, J), In[P]);
    if (Columns[J].Offset != 0.0)
      Sum = ops::add(Sum, Columns[J].Offset);
    Out[J] = Sum;
  }
}

template <bool Counted>
void PackedLinearKernel::batchedImpl(const double *In, double *Out, int K,
                                     int PopStride) const {
  const int U = static_cast<int>(Columns.size());
  for (int K0 = 0; K0 < K; K0 += BatchBlock) {
    int KB = std::min(BatchBlock, K - K0);
    for (int J = 0; J != U; ++J) {
      const Column &Col = Columns[J];
      const double *Coef = Col.Coeffs.data();
      const int N = static_cast<int>(Col.Coeffs.size());
      const double *Base = In + Col.First;
      int KI = 0;
      // Register tile: four firings share each coefficient load; each
      // firing's accumulation order matches applyBanded exactly.
      for (; KI + 4 <= KB; KI += 4) {
        int G = K0 + KI;
        const double *W0 = Base + static_cast<size_t>(G + 0) * PopStride;
        const double *W1 = Base + static_cast<size_t>(G + 1) * PopStride;
        const double *W2 = Base + static_cast<size_t>(G + 2) * PopStride;
        const double *W3 = Base + static_cast<size_t>(G + 3) * PopStride;
        double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
        for (int I = 0; I != N; ++I) {
          double C = Coef[I];
          S0 = kfma<Counted>(S0, C, W0[I]);
          S1 = kfma<Counted>(S1, C, W1[I]);
          S2 = kfma<Counted>(S2, C, W2[I]);
          S3 = kfma<Counted>(S3, C, W3[I]);
        }
        if (Col.Offset != 0.0) {
          S0 = kadd<Counted>(S0, Col.Offset);
          S1 = kadd<Counted>(S1, Col.Offset);
          S2 = kadd<Counted>(S2, Col.Offset);
          S3 = kadd<Counted>(S3, Col.Offset);
        }
        Out[static_cast<size_t>(G + 0) * U + J] = S0;
        Out[static_cast<size_t>(G + 1) * U + J] = S1;
        Out[static_cast<size_t>(G + 2) * U + J] = S2;
        Out[static_cast<size_t>(G + 3) * U + J] = S3;
      }
      for (; KI != KB; ++KI) {
        int G = K0 + KI;
        const double *W = Base + static_cast<size_t>(G) * PopStride;
        double Sum = 0.0;
        for (int I = 0; I != N; ++I)
          Sum = kfma<Counted>(Sum, Coef[I], W[I]);
        if (Col.Offset != 0.0)
          Sum = kadd<Counted>(Sum, Col.Offset);
        Out[static_cast<size_t>(G) * U + J] = Sum;
      }
    }
  }
}

void PackedLinearKernel::applyBatched(const double *In, double *Out, int K,
                                      int PopStride) const {
#if SLIN_COUNT_OPS
  if (ops::isCounting()) {
    batchedImpl<true>(In, Out, K, PopStride);
    return;
  }
#endif
  batchedImpl<false>(In, Out, K, PopStride);
}

void PackedLinearKernel::emitBatchedCxx(std::string &Src,
                                        const std::string &Fn,
                                        int PopStride) const {
  const int U = static_cast<int>(Columns.size());
  auto N = [](long V) { return std::to_string(V); };

  // Band data as static tables: one flat coefficient pool plus
  // per-column {first row, band length, pool offset, constant offset}.
  std::string T;
  T += "extern \"C\" void " + Fn + "(const double *In, double *Out, "
       "long K) {\n";
  T += "  static const double Coefs[] = {";
  size_t Pool = 0;
  for (const Column &Col : Columns)
    for (double C : Col.Coeffs) {
      T += (Pool++ ? ", " : " ") + wir::cxxDoubleLiteral(C);
    }
  if (!Pool)
    T += " 0.0"; // empty bands: keep the array well-formed (never read)
  T += " };\n";
  auto Table = [&](const char *Ty, const char *Name, auto Get) {
    T += std::string("  static const ") + Ty + " " + Name + "[] = {";
    for (int J = 0; J != U; ++J)
      T += (J ? ", " : " ") + Get(Columns[static_cast<size_t>(J)]);
    T += " };\n";
  };
  size_t Off = 0;
  Table("int", "First", [&](const Column &C) { return N(C.First); });
  Table("int", "BandN",
        [&](const Column &C) { return N(static_cast<long>(C.Coeffs.size())); });
  Table("int", "CoefOff", [&](const Column &C) {
    size_t This = Off;
    Off += C.Coeffs.size();
    return N(static_cast<long>(This));
  });
  Table("double", "Offset",
        [&](const Column &C) { return wir::cxxDoubleLiteral(C.Offset); });

  // The batchedImpl<false> loop verbatim: 32-firing cache blocks, a
  // 4-wide register tile (SLP-vectorizable: the four accumulators are
  // independent, each preserving applyBanded's accumulation order), and
  // a per-window remainder loop.
  T += "  for (long K0 = 0; K0 < K; K0 += 32) {\n"
       "    long KB = K - K0 < 32 ? K - K0 : 32;\n"
       "    for (int J = 0; J != " + N(U) + "; ++J) {\n"
       "      const double *Coef = Coefs + CoefOff[J];\n"
       "      const int Nb = BandN[J];\n"
       "      const double *Base = In + First[J];\n"
       "      const double Co = Offset[J];\n"
       "      long KI = 0;\n"
       "      for (; KI + 4 <= KB; KI += 4) {\n"
       "        long G = K0 + KI;\n";
  for (int W = 0; W != 4; ++W)
    T += "        const double *W" + N(W) + " = Base + (unsigned long)(G + " +
         N(W) + ") * " + N(PopStride) + ";\n";
  T += "        double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;\n"
       "        for (int I = 0; I != Nb; ++I) {\n"
       "          double C = Coef[I];\n"
       "          S0 = S0 + C * W0[I];\n"
       "          S1 = S1 + C * W1[I];\n"
       "          S2 = S2 + C * W2[I];\n"
       "          S3 = S3 + C * W3[I];\n"
       "        }\n"
       "        if (Co != 0.0) {\n"
       "          S0 = S0 + Co; S1 = S1 + Co; S2 = S2 + Co; S3 = S3 + Co;\n"
       "        }\n";
  for (int W = 0; W != 4; ++W)
    T += "        Out[(unsigned long)(G + " + N(W) + ") * " + N(U) +
         " + J] = S" + N(W) + ";\n";
  T += "      }\n"
       "      for (; KI != KB; ++KI) {\n"
       "        long G = K0 + KI;\n"
       "        const double *W = Base + (unsigned long)G * " +
       N(PopStride) + ";\n"
       "        double Sum = 0.0;\n"
       "        for (int I = 0; I != Nb; ++I)\n"
       "          Sum = Sum + Coef[I] * W[I];\n"
       "        if (Co != 0.0)\n"
       "          Sum = Sum + Co;\n"
       "        Out[(unsigned long)G * " + N(U) + " + J] = Sum;\n"
       "      }\n"
       "    }\n"
       "  }\n"
       "}\n";
  Src += T;
}

size_t PackedLinearKernel::bandedMultiplyCount() const {
  size_t N = 0;
  for (const Column &Col : Columns)
    N += Col.Coeffs.size();
  return N;
}

//===----------------------------------------------------------------------===//
// TunedGemv
//===----------------------------------------------------------------------===//

TunedGemv::TunedGemv(const Matrix &CNat, const Vector &B)
    : E(static_cast<int>(CNat.rows())), U(static_cast<int>(CNat.cols())),
      RowMajorT(CNat.rows() * CNat.cols()), Offsets(B.size()),
      Staging(CNat.rows()) {
  assert(B.size() == CNat.cols() && "offset size mismatch");
  for (int J = 0; J != U; ++J) {
    Offsets[J] = B[J];
    for (int P = 0; P != E; ++P)
      RowMajorT[static_cast<size_t>(J) * E + P] = CNat.at(P, J);
  }
}

template <bool Counted>
void TunedGemv::applyImpl(const double *In, double *Out) const {
  // Interface overhead: stage the input window, as the paper's ATLAS
  // wrapper copied the tape into a contiguous buffer.
  for (int P = 0; P != E; ++P)
    Staging[P] = In[P];

  for (int J = 0; J != U; ++J) {
    const double *Row = RowMajorT.data() + static_cast<size_t>(J) * E;
    double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
    int P = 0;
    for (; P + 4 <= E; P += 4) {
      S0 = kfma<Counted>(S0, Row[P + 0], Staging[P + 0]);
      S1 = kfma<Counted>(S1, Row[P + 1], Staging[P + 1]);
      S2 = kfma<Counted>(S2, Row[P + 2], Staging[P + 2]);
      S3 = kfma<Counted>(S3, Row[P + 3], Staging[P + 3]);
    }
    for (; P != E; ++P)
      S0 = kfma<Counted>(S0, Row[P], Staging[P]);
    double Sum = kadd<Counted>(kadd<Counted>(S0, S1), kadd<Counted>(S2, S3));
    if (Offsets[J] != 0.0)
      Sum = kadd<Counted>(Sum, Offsets[J]);
    Out[J] = Sum;
  }
}

void TunedGemv::apply(const double *In, double *Out) const {
#if SLIN_COUNT_OPS
  if (ops::isCounting()) {
    applyImpl<true>(In, Out);
    return;
  }
#endif
  applyImpl<false>(In, Out);
}

template <bool Counted>
void TunedGemv::batchedImpl(const double *In, double *Out, int K,
                            int PopStride) const {
  Panel.resize(static_cast<size_t>(BatchBlock) * E);
  for (int K0 = 0; K0 < K; K0 += BatchBlock) {
    int KB = std::min(BatchBlock, K - K0);
    // Gather the block's peek windows into the panel (one row per firing)
    // — the batched analogue of the per-call staging copy.
    for (int KI = 0; KI != KB; ++KI) {
      const double *W =
          In + static_cast<size_t>(K0 + KI) * PopStride;
      std::copy(W, W + E, Panel.data() + static_cast<size_t>(KI) * E);
    }
    for (int J = 0; J != U; ++J) {
      const double *Row = RowMajorT.data() + static_cast<size_t>(J) * E;
      int KI = 0;
      // Register tile: two firings, each with the sequential path's 4-way
      // split accumulators, sharing every coefficient load.
      for (; KI + 2 <= KB; KI += 2) {
        const double *W0 = Panel.data() + static_cast<size_t>(KI) * E;
        const double *W1 = W0 + E;
        double A0 = 0.0, A1 = 0.0, A2 = 0.0, A3 = 0.0;
        double B0 = 0.0, B1 = 0.0, B2 = 0.0, B3 = 0.0;
        int P = 0;
        for (; P + 4 <= E; P += 4) {
          double C0 = Row[P + 0], C1 = Row[P + 1];
          double C2 = Row[P + 2], C3 = Row[P + 3];
          A0 = kfma<Counted>(A0, C0, W0[P + 0]);
          A1 = kfma<Counted>(A1, C1, W0[P + 1]);
          A2 = kfma<Counted>(A2, C2, W0[P + 2]);
          A3 = kfma<Counted>(A3, C3, W0[P + 3]);
          B0 = kfma<Counted>(B0, C0, W1[P + 0]);
          B1 = kfma<Counted>(B1, C1, W1[P + 1]);
          B2 = kfma<Counted>(B2, C2, W1[P + 2]);
          B3 = kfma<Counted>(B3, C3, W1[P + 3]);
        }
        for (; P != E; ++P) {
          A0 = kfma<Counted>(A0, Row[P], W0[P]);
          B0 = kfma<Counted>(B0, Row[P], W1[P]);
        }
        double Sum0 =
            kadd<Counted>(kadd<Counted>(A0, A1), kadd<Counted>(A2, A3));
        double Sum1 =
            kadd<Counted>(kadd<Counted>(B0, B1), kadd<Counted>(B2, B3));
        if (Offsets[J] != 0.0) {
          Sum0 = kadd<Counted>(Sum0, Offsets[J]);
          Sum1 = kadd<Counted>(Sum1, Offsets[J]);
        }
        Out[static_cast<size_t>(K0 + KI + 0) * U + J] = Sum0;
        Out[static_cast<size_t>(K0 + KI + 1) * U + J] = Sum1;
      }
      for (; KI != KB; ++KI) {
        const double *W = Panel.data() + static_cast<size_t>(KI) * E;
        double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
        int P = 0;
        for (; P + 4 <= E; P += 4) {
          S0 = kfma<Counted>(S0, Row[P + 0], W[P + 0]);
          S1 = kfma<Counted>(S1, Row[P + 1], W[P + 1]);
          S2 = kfma<Counted>(S2, Row[P + 2], W[P + 2]);
          S3 = kfma<Counted>(S3, Row[P + 3], W[P + 3]);
        }
        for (; P != E; ++P)
          S0 = kfma<Counted>(S0, Row[P], W[P]);
        double Sum =
            kadd<Counted>(kadd<Counted>(S0, S1), kadd<Counted>(S2, S3));
        if (Offsets[J] != 0.0)
          Sum = kadd<Counted>(Sum, Offsets[J]);
        Out[static_cast<size_t>(K0 + KI) * U + J] = Sum;
      }
    }
  }
}

void TunedGemv::applyBatched(const double *In, double *Out, int K,
                             int PopStride) const {
#if SLIN_COUNT_OPS
  if (ops::isCounting()) {
    batchedImpl<true>(In, Out, K, PopStride);
    return;
  }
#endif
  batchedImpl<false>(In, Out, K, PopStride);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

void PackedLinearKernel::serialize(serial::Writer &W) const {
  W.i32(PeekRate);
  serializeMatrix(W, Dense);
  W.u32(static_cast<uint32_t>(Columns.size()));
  for (const Column &C : Columns) {
    W.i32(C.First);
    W.f64s(C.Coeffs);
    W.f64(C.Offset);
  }
}

bool PackedLinearKernel::deserialize(serial::Reader &R,
                                     PackedLinearKernel &Out) {
  PackedLinearKernel K;
  K.PeekRate = R.i32();
  if (!deserializeMatrix(R, K.Dense))
    return false;
  uint32_t U = R.u32();
  if (!R.ok() || U > R.remaining())
    return false;
  K.Columns.resize(U);
  for (Column &C : K.Columns) {
    C.First = R.i32();
    C.Coeffs = R.f64s();
    C.Offset = R.f64();
  }
  if (!R.ok() || K.PeekRate < 0 ||
      K.Dense.rows() != static_cast<size_t>(K.PeekRate) ||
      K.Dense.cols() != K.Columns.size())
    return false;
  Out = std::move(K);
  return true;
}

void TunedGemv::serialize(serial::Writer &W) const {
  W.i32(E);
  W.i32(U);
  W.f64s(RowMajorT);
  W.f64s(Offsets);
}

bool TunedGemv::deserialize(serial::Reader &R, TunedGemv &Out) {
  TunedGemv G;
  G.E = R.i32();
  G.U = R.i32();
  G.RowMajorT = R.f64s();
  G.Offsets = R.f64s();
  if (!R.ok() || G.E < 0 || G.U < 0 ||
      G.RowMajorT.size() !=
          static_cast<size_t>(G.E) * static_cast<size_t>(G.U) ||
      G.Offsets.size() != static_cast<size_t>(G.U))
    return false;
  G.Staging.resize(static_cast<size_t>(G.E));
  Out = std::move(G);
  return true;
}
