//===- matrix/Kernels.h - Runtime linear-filter kernels --------*- C++ -*-===//
///
/// \file
/// Runtime matrix-vector kernels backing *linear replacement* (Section 5.2).
/// The paper generated two code shapes:
///
///  * an unrolled expression / "diagonal" (banded) indexed multiply that
///    skips the zero entries at the top and bottom of each column
///    (Figure 5-7) — our PackedLinearKernel::applyBanded;
///  * a call-out to the machine-tuned ATLAS gemv (Section 5.4), including
///    the buffer-copy interface overhead they measured — our TunedGemv.
///
/// Both kernels operate in *natural* orientation: In[p] holds peek(p), and
/// Out[j] receives the j'th pushed value. All arithmetic is routed through
/// the op counters so FLOP measurements include these kernels.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_MATRIX_KERNELS_H
#define SLIN_MATRIX_KERNELS_H

#include "matrix/Matrix.h"

#include <vector>

namespace slin {

/// Column-packed representation of a natural-orientation linear map
/// y[j] = sum_p C[p][j] * x[p] + b[j], with per-column leading/trailing
/// zeros removed (Figure 5-7's sparseA/firstNonZero/lastNonZero).
class PackedLinearKernel {
public:
  struct Column {
    int First = 0;               ///< index of first (possibly) nonzero coeff
    std::vector<double> Coeffs;  ///< band of coefficients
    double Offset = 0.0;         ///< constant b[j]
  };

  /// \p CNat is the e x u natural-orientation coefficient matrix
  /// (CNat[p][j] multiplies peek(p) in push j); \p B has u offsets.
  PackedLinearKernel(const Matrix &CNat, const Vector &B);

  int peekRate() const { return PeekRate; }
  int pushRate() const { return static_cast<int>(Columns.size()); }
  const std::vector<Column> &columns() const { return Columns; }

  /// Banded multiply skipping leading/trailing zeros (counted).
  void applyBanded(const double *In, double *Out) const;

  /// Dense multiply over all e coefficients per column (counted); models
  /// the naive generated code before the zero-skipping optimization.
  void applyDense(const double *In, double *Out) const;

  /// Total multiplies performed by one banded application.
  size_t bandedMultiplyCount() const;

private:
  int PeekRate;
  Matrix Dense; ///< kept for applyDense
  std::vector<Column> Columns;
};

/// Cache-blocked, transposed-layout gemv standing in for ATLAS.
///
/// Stores the coefficient matrix transposed (one contiguous row per output)
/// and processes it with 4-way unrolled accumulators. Like the paper's
/// ATLAS interface, each application first copies the input window into a
/// staging buffer (this is the interface overhead Section 5.4 blames for
/// the mixed results) and performs a *dense* multiply: it cannot exploit
/// the zero bands the banded kernel skips.
class TunedGemv {
public:
  TunedGemv(const Matrix &CNat, const Vector &B);

  int peekRate() const { return E; }
  int pushRate() const { return U; }

  void apply(const double *In, double *Out) const;

private:
  int E;
  int U;
  std::vector<double> RowMajorT; ///< U x E, row j = coefficients of output j
  std::vector<double> Offsets;
  mutable std::vector<double> Staging; ///< interface copy buffer
};

} // namespace slin

#endif // SLIN_MATRIX_KERNELS_H
