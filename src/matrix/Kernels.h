//===- matrix/Kernels.h - Runtime linear-filter kernels --------*- C++ -*-===//
///
/// \file
/// Runtime matrix kernels backing *linear replacement* (Section 5.2).
/// The paper generated two code shapes:
///
///  * an unrolled expression / "diagonal" (banded) indexed multiply that
///    skips the zero entries at the top and bottom of each column
///    (Figure 5-7) — our PackedLinearKernel::applyBanded;
///  * a call-out to the machine-tuned ATLAS gemv (Section 5.4), including
///    the buffer-copy interface overhead they measured — our TunedGemv.
///
/// Both kernels operate in *natural* orientation: In[p] holds peek(p), and
/// Out[j] receives the j'th pushed value.
///
/// On top of the per-firing gemv paths, each kernel has a **batched** path
/// for the compiled execution engine (exec/CompiledExecutor.h): a linear
/// node fired K times per batch reads K overlapping peek windows laid out
/// at a fixed stride (the node's pop rate) in the engine's flat channel
/// buffer, which turns the K matrix-vector products into one blocked
/// K x e by e x u matrix multiply. The batched loops are cache-blocked
/// over firings and register-tiled several firings wide (each coefficient
/// load is reused across the tile — the "let the tuned kernel see a
/// bigger matrix" move of the paper's ATLAS experiment, Section 5.4).
/// Per-firing accumulation order is identical to the sequential paths, so
/// batched and per-firing execution produce bit-identical outputs.
///
/// Every kernel selects between a counted loop (arithmetic routed through
/// the op counters, for the paper's FLOP taxonomy tables) and an ops-free
/// fast path, chosen at runtime by ops::isCounting() and reducible at
/// compile time with SLIN_COUNT_OPS=0 (support/OpCounters.h).
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_MATRIX_KERNELS_H
#define SLIN_MATRIX_KERNELS_H

#include "matrix/Matrix.h"

#include <vector>

namespace slin {

namespace serial {
class Writer;
class Reader;
} // namespace serial

/// Column-packed representation of a natural-orientation linear map
/// y[j] = sum_p C[p][j] * x[p] + b[j], with per-column leading/trailing
/// zeros removed (Figure 5-7's sparseA/firstNonZero/lastNonZero).
class PackedLinearKernel {
public:
  struct Column {
    int First = 0;               ///< index of first (possibly) nonzero coeff
    std::vector<double> Coeffs;  ///< band of coefficients
    double Offset = 0.0;         ///< constant b[j]
  };

  /// \p CNat is the e x u natural-orientation coefficient matrix
  /// (CNat[p][j] multiplies peek(p) in push j); \p B has u offsets.
  PackedLinearKernel(const Matrix &CNat, const Vector &B);

  int peekRate() const { return PeekRate; }
  int pushRate() const { return static_cast<int>(Columns.size()); }
  const std::vector<Column> &columns() const { return Columns; }

  /// Banded multiply skipping leading/trailing zeros (counted).
  void applyBanded(const double *In, double *Out) const;

  /// Dense multiply over all e coefficients per column (counted); models
  /// the naive generated code before the zero-skipping optimization.
  void applyDense(const double *In, double *Out) const;

  /// Batched banded multiply: K consecutive firings whose peek windows
  /// advance by \p PopStride items (window k starts at In + k*PopStride);
  /// the k'th firing's outputs go to Out + k*pushRate(). Bit-identical to
  /// K calls of applyBanded.
  void applyBatched(const double *In, double *Out, int K, int PopStride) const;

  /// Total multiplies performed by one banded application.
  size_t bandedMultiplyCount() const;

  /// Native-codegen twin of applyBatched (codegen/CxxBackend.h): appends
  /// to \p Src an extern "C" function \p Fn(const double *In, double
  /// *Out, long K) replicating the uncounted batched loop exactly — same
  /// cache blocking, register tiling and per-firing accumulation order,
  /// bands and offsets baked in as exact literals — over peek windows at
  /// stride \p PopStride. Bit-identical to applyBatched with counting
  /// off (the generated TU is built with -ffp-contract=off, so `acc +
  /// c*w` rounds identically on both sides).
  void emitBatchedCxx(std::string &Src, const std::string &Fn,
                      int PopStride) const;

  /// Persists the packed form bit-exactly (support/Serialize.h): loaded
  /// kernels run the same bands in the same order as freshly packed ones.
  void serialize(serial::Writer &W) const;
  static bool deserialize(serial::Reader &R, PackedLinearKernel &Out);

private:
  PackedLinearKernel() = default; ///< deserialize target only

  template <bool Counted> void bandedImpl(const double *In, double *Out) const;
  template <bool Counted>
  void batchedImpl(const double *In, double *Out, int K, int PopStride) const;

  int PeekRate = 0;
  Matrix Dense; ///< kept for applyDense
  std::vector<Column> Columns;
};

/// Cache-blocked, transposed-layout gemv standing in for ATLAS.
///
/// Stores the coefficient matrix transposed (one contiguous row per output)
/// and processes it with 4-way unrolled accumulators. Like the paper's
/// ATLAS interface, each application first copies the input window into a
/// staging buffer (this is the interface overhead Section 5.4 blames for
/// the mixed results) and performs a *dense* multiply: it cannot exploit
/// the zero bands the banded kernel skips. The batched path gathers a
/// block of K peek windows into an input panel and runs one blocked gemm
/// over it, amortizing the staging copy the way a real ATLAS dgemm call
/// would.
class TunedGemv {
public:
  TunedGemv(const Matrix &CNat, const Vector &B);

  int peekRate() const { return E; }
  int pushRate() const { return U; }

  void apply(const double *In, double *Out) const;

  /// Batched gemm over K windows at stride \p PopStride; bit-identical to
  /// K calls of apply.
  void applyBatched(const double *In, double *Out, int K, int PopStride) const;

  /// Persists the transposed packed layout bit-exactly.
  void serialize(serial::Writer &W) const;
  static bool deserialize(serial::Reader &R, TunedGemv &Out);

private:
  TunedGemv() = default; ///< deserialize target only

  template <bool Counted> void applyImpl(const double *In, double *Out) const;
  template <bool Counted>
  void batchedImpl(const double *In, double *Out, int K, int PopStride) const;

  int E = 0;
  int U = 0;
  std::vector<double> RowMajorT; ///< U x E, row j = coefficients of output j
  std::vector<double> Offsets;
  mutable std::vector<double> Staging; ///< interface copy buffer
  mutable std::vector<double> Panel;   ///< batched-path gather panel
};

} // namespace slin

#endif // SLIN_MATRIX_KERNELS_H
